// Vectorized transcendental kernels with runtime backend dispatch.
// See tensor/vmath.hpp for the backend/accuracy/determinism contracts.
//
// The polynomial cores are Cephes-style rational approximations
// (Moshier): exp as 2^n * R(r) after Cody-Waite argument reduction
// r = x - n*ln2 (split constant), tanh as x + x^3 P(x^2)/Q(x^2) below
// 0.625 and 1 - 2e/(1+e) with e = exp(-2|x|) above, sigmoid through the
// stable two-sided form num/(1+e) with e = exp(-|x|). The scalar
// portable path writes the exact operation sequence of the AVX2 path
// using std::fma (correctly rounded, hence bitwise-equal to the FMA
// instruction), so an element's value never depends on whether it was
// computed in a SIMD lane or a loop tail.
#include "tensor/vmath.hpp"

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <string>

#include "hpc/parallel_for.hpp"

// The AVX2 section is omitted entirely under GEONAS_SCALAR_MATH: the
// scalar-reference build pins select_impl() to RefMath, and compiling
// the then-unreachable SIMD kernels would only trip -Werror.
#if defined(__x86_64__) && defined(__GNUC__) && !defined(GEONAS_SCALAR_MATH)
#define GEONAS_VMATH_X86_DISPATCH 1
#include <immintrin.h>
#endif

namespace geonas::tensor {

namespace {

// --- exp: Cephes exp.c constants ------------------------------------
constexpr double kLog2E = 1.4426950408889634073599;
constexpr double kLn2Hi = 6.93145751953125e-1;
constexpr double kLn2Lo = 1.42860682030941723212e-6;
constexpr double kExpP0 = 1.26177193074810590878e-4;
constexpr double kExpP1 = 3.02994407707441961300e-2;
constexpr double kExpP2 = 9.99999999999999999910e-1;
constexpr double kExpQ0 = 3.00198505138664455042e-6;
constexpr double kExpQ1 = 2.52448340349684104192e-3;
constexpr double kExpQ2 = 2.27265548208155028766e-1;
constexpr double kExpQ3 = 2.00000000000000000005e0;
/// Largest x with exp(x) finite; above, exp saturates to +inf.
constexpr double kExpHi = 709.782712893383996843;
/// Below this, exp(x) < 2^-1075 rounds to (+)0.
constexpr double kExpLo = -745.133219101941108420;

// --- tanh: Cephes tanh.c small-argument rational ---------------------
constexpr double kTanhP0 = -9.64399179425052238628e-1;
constexpr double kTanhP1 = -9.92877231001918586564e1;
constexpr double kTanhP2 = -1.61468768441708447952e3;
constexpr double kTanhQ0 = 1.12811678491632931402e2;
constexpr double kTanhQ1 = 2.23548839060100448583e3;
constexpr double kTanhQ2 = 4.84406305325125486048e3;
constexpr double kTanhSmall = 0.625;

/// Exact power of two from an in-range exponent (|n| <= ~540 here, so
/// n + 1023 is always a valid normal-exponent field).
inline double pow2i(int n) noexcept {
  return std::bit_cast<double>(
      (static_cast<std::uint64_t>(n) + 1023ULL) << 52);
}

/// Portable backend: the scalar mirror of the AVX2 operation sequence.
/// Every multiply/add pairing that the vector code fuses is written with
/// std::fma (correctly rounded == the FMA instruction), every one it
/// does not fuse stays a separate multiply and add.
struct FmaMath {
  static double exp(double x) noexcept {
    const double xc = std::fmin(std::fmax(x, kExpLo), kExpHi);
    const double nd = std::nearbyint(xc * kLog2E);
    double r = std::fma(nd, -kLn2Hi, xc);
    r = std::fma(nd, -kLn2Lo, r);
    const double r2 = r * r;
    double p = std::fma(kExpP0, r2, kExpP1);
    p = std::fma(p, r2, kExpP2);
    const double px = r * p;
    double q = std::fma(kExpQ0, r2, kExpQ1);
    q = std::fma(q, r2, kExpQ2);
    q = std::fma(q, r2, kExpQ3);
    const double e = px / (q - px);
    double res = std::fma(2.0, e, 1.0);
    // Two-step 2^n scaling: n can reach +/-1076 where a single 2^n is
    // not representable although the final product is.
    const int n = static_cast<int>(nd);
    const int n1 = n >> 1;
    res = (res * pow2i(n1)) * pow2i(n - n1);
    res = x > kExpHi ? std::numeric_limits<double>::infinity() : res;
    res = x < kExpLo ? 0.0 : res;
    res = x != x ? x : res;  // NaN in, NaN out (the clamp destroys it)
    return res;
  }

  static double tanh(double x) noexcept {
    const double xa = std::fabs(x);
    const double z = x * x;
    double p = std::fma(kTanhP0, z, kTanhP1);
    p = std::fma(p, z, kTanhP2);
    double q = z + kTanhQ0;
    q = std::fma(q, z, kTanhQ1);
    q = std::fma(q, z, kTanhQ2);
    // x * (1 + z P/Q) rather than Cephes' x + x z P/Q: multiplication
    // preserves the sign of +/-0 where the trailing add would not.
    const double small = x * std::fma(z, p / q, 1.0);
    const double e = exp(-2.0 * xa);
    const double big = 1.0 - (2.0 * e) / (1.0 + e);
    return xa < kTanhSmall ? small : std::copysign(big, x);
  }

  static double sigmoid(double x) noexcept {
    const double e = exp(-std::fabs(x));
    const double num = std::signbit(x) ? e : 1.0;
    return num / (1.0 + e);
  }

  /// a * b + c, fused — mirrors the vector code's FMA placement.
  static double madd(double a, double b, double c) noexcept {
    return std::fma(a, b, c);
  }
};

/// Scalar-reference backend (GEONAS_SCALAR_MATH): the pre-vmath
/// numerics — std::exp/std::tanh and unfused multiply-add — kept as the
/// A/B accuracy baseline.
struct RefMath {
  static double exp(double x) noexcept { return std::exp(x); }
  static double tanh(double x) noexcept { return std::tanh(x); }
  static double sigmoid(double x) noexcept {
    // Stable two-sided form (same algorithm as the vector path; the
    // one-sided 1/(1+exp(-x)) overflows exp for large negative x).
    const double e = std::exp(-std::fabs(x));
    const double num = std::signbit(x) ? e : 1.0;
    return num / (1.0 + e);
  }
  static double madd(double a, double b, double c) noexcept {
    return a * b + c;
  }
};

// --- per-element fused-kernel bodies (shared by scalar loops and the
// ----- AVX2 kernels' tails) ------------------------------------------

template <class M>
inline void lstm_fwd_elem(double* zr, const double* cp, double* cn,
                          double* hn, double* ho, std::size_t u,
                          std::size_t i) noexcept {
  const double ig = M::sigmoid(zr[i]);
  const double fg = M::sigmoid(zr[u + i]);
  const double gg = M::tanh(zr[2 * u + i]);
  const double og = M::sigmoid(zr[3 * u + i]);
  const double c = M::madd(fg, cp[i], ig * gg);
  const double h = og * M::tanh(c);
  zr[i] = ig;
  zr[u + i] = fg;
  zr[2 * u + i] = gg;
  zr[3 * u + i] = og;
  cn[i] = c;
  hn[i] = h;
  ho[i] = h;
}

template <class M>
inline void lstm_bwd_elem(const double* gr, const double* cpr,
                          const double* cnr, const double* gor,
                          const double* dhr, double* dcr, double* dzr,
                          std::size_t u, std::size_t i) noexcept {
  const double ig = gr[i];
  const double fg = gr[u + i];
  const double gg = gr[2 * u + i];
  const double og = gr[3 * u + i];
  const double tanh_c = M::tanh(cnr[i]);
  const double dh = gor[i] + dhr[i];
  // h = o * tanh(c): route dh into the o-gate and the cell state.
  const double dc = M::madd(dh * og, 1.0 - tanh_c * tanh_c, dcr[i]);
  const double d_og = dh * tanh_c;
  const double d_ig = dc * gg;
  const double d_fg = dc * cpr[i];
  const double d_gg = dc * ig;
  dcr[i] = dc * fg;  // dL/dc_{t-1}
  dzr[i] = d_ig * (ig * (1.0 - ig));
  dzr[u + i] = d_fg * (fg * (1.0 - fg));
  dzr[2 * u + i] = d_gg * (1.0 - gg * gg);
  dzr[3 * u + i] = d_og * (og * (1.0 - og));
}

template <class M>
inline void gru_zr_elem(double* ar, const double* hp, double* rhr,
                        std::size_t u, std::size_t i) noexcept {
  const double zg = M::sigmoid(ar[i]);
  const double rg = M::sigmoid(ar[u + i]);
  ar[i] = zg;
  ar[u + i] = rg;
  rhr[i] = rg * hp[i];
}

template <class M>
inline void gru_out_elem(double* ar, const double* hp, double* hn,
                         double* ho, std::size_t u, std::size_t i) noexcept {
  const double zg = ar[i];
  const double hh = M::tanh(ar[2 * u + i]);
  ar[2 * u + i] = hh;
  const double h = M::madd(zg, hh, (1.0 - zg) * hp[i]);
  hn[i] = h;
  ho[i] = h;
}

// --- scalar backends (portable-fma and scalar-reference) -------------

template <class M>
void exp_span_t(const double* x, double* out, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) out[i] = M::exp(x[i]);
}

template <class M>
void tanh_span_t(const double* x, double* out, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) out[i] = M::tanh(x[i]);
}

template <class M>
void sigmoid_span_t(const double* x, double* out, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) out[i] = M::sigmoid(x[i]);
}

template <class M>
void lstm_fwd_t(std::size_t rows, std::size_t u, double* z,
                const double* c_prev, double* c_new, double* h_new,
                double* h_out, std::size_t h_out_stride) {
  for (std::size_t r = 0; r < rows; ++r) {
    double* zr = z + r * 4 * u;
    const double* cp = c_prev + r * u;
    double* cn = c_new + r * u;
    double* hn = h_new + r * u;
    double* ho = h_out + r * h_out_stride;
    for (std::size_t i = 0; i < u; ++i) {
      lstm_fwd_elem<M>(zr, cp, cn, hn, ho, u, i);
    }
  }
}

template <class M>
void lstm_bwd_t(std::size_t rows, std::size_t u, const double* gates,
                const double* c_prev, const double* c_new,
                const double* grad_out, std::size_t grad_out_stride,
                const double* dh, double* dc, double* dz,
                double* bias_grad) {
  for (std::size_t r = 0; r < rows; ++r) {
    const double* gr = gates + r * 4 * u;
    double* dzr = dz + r * 4 * u;
    for (std::size_t i = 0; i < u; ++i) {
      lstm_bwd_elem<M>(gr, c_prev + r * u, c_new + r * u,
                       grad_out + r * grad_out_stride, dh + r * u,
                       dc + r * u, dzr, u, i);
    }
    for (std::size_t j = 0; j < 4 * u; ++j) bias_grad[j] += dzr[j];
  }
}

template <class M>
void gru_zr_t(std::size_t rows, std::size_t u, double* a,
              const double* h_prev, double* rh) {
  for (std::size_t r = 0; r < rows; ++r) {
    double* ar = a + r * 3 * u;
    const double* hp = h_prev + r * u;
    double* rhr = rh + r * u;
    for (std::size_t i = 0; i < u; ++i) gru_zr_elem<M>(ar, hp, rhr, u, i);
  }
}

template <class M>
void gru_out_t(std::size_t rows, std::size_t u, double* a,
               const double* h_prev, double* h_new, double* h_out,
               std::size_t h_out_stride) {
  for (std::size_t r = 0; r < rows; ++r) {
    double* ar = a + r * 3 * u;
    for (std::size_t i = 0; i < u; ++i) {
      gru_out_elem<M>(ar, h_prev + r * u, h_new + r * u,
                      h_out + r * h_out_stride, u, i);
    }
  }
}

// --- AVX2+FMA backend ------------------------------------------------

#ifdef GEONAS_VMATH_X86_DISPATCH

__attribute__((target("avx2,fma"))) inline __m256d vexp4(__m256d x) {
  const __m256d lo = _mm256_set1_pd(kExpLo);
  const __m256d hi = _mm256_set1_pd(kExpHi);
  const __m256d xc = _mm256_min_pd(_mm256_max_pd(x, lo), hi);
  const __m256d nd = _mm256_round_pd(
      _mm256_mul_pd(xc, _mm256_set1_pd(kLog2E)),
      _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
  __m256d r = _mm256_fmadd_pd(nd, _mm256_set1_pd(-kLn2Hi), xc);
  r = _mm256_fmadd_pd(nd, _mm256_set1_pd(-kLn2Lo), r);
  const __m256d r2 = _mm256_mul_pd(r, r);
  __m256d p = _mm256_fmadd_pd(_mm256_set1_pd(kExpP0), r2,
                              _mm256_set1_pd(kExpP1));
  p = _mm256_fmadd_pd(p, r2, _mm256_set1_pd(kExpP2));
  const __m256d px = _mm256_mul_pd(r, p);
  __m256d q = _mm256_fmadd_pd(_mm256_set1_pd(kExpQ0), r2,
                              _mm256_set1_pd(kExpQ1));
  q = _mm256_fmadd_pd(q, r2, _mm256_set1_pd(kExpQ2));
  q = _mm256_fmadd_pd(q, r2, _mm256_set1_pd(kExpQ3));
  const __m256d e = _mm256_div_pd(px, _mm256_sub_pd(q, px));
  __m256d res = _mm256_fmadd_pd(_mm256_set1_pd(2.0), e,
                                _mm256_set1_pd(1.0));
  // Two-step 2^n scaling (see FmaMath::exp).
  const __m128i n32 = _mm256_cvtpd_epi32(nd);
  const __m128i n1 = _mm_srai_epi32(n32, 1);
  const __m128i n2 = _mm_sub_epi32(n32, n1);
  const __m256i bias = _mm256_set1_epi64x(1023);
  const __m256d s1 = _mm256_castsi256_pd(_mm256_slli_epi64(
      _mm256_add_epi64(_mm256_cvtepi32_epi64(n1), bias), 52));
  const __m256d s2 = _mm256_castsi256_pd(_mm256_slli_epi64(
      _mm256_add_epi64(_mm256_cvtepi32_epi64(n2), bias), 52));
  res = _mm256_mul_pd(_mm256_mul_pd(res, s1), s2);
  res = _mm256_blendv_pd(
      res, _mm256_set1_pd(std::numeric_limits<double>::infinity()),
      _mm256_cmp_pd(x, hi, _CMP_GT_OQ));
  res = _mm256_blendv_pd(res, _mm256_setzero_pd(),
                         _mm256_cmp_pd(x, lo, _CMP_LT_OQ));
  res = _mm256_blendv_pd(res, x, _mm256_cmp_pd(x, x, _CMP_UNORD_Q));
  return res;
}

__attribute__((target("avx2,fma"))) inline __m256d vtanh4(__m256d x) {
  const __m256d signmask = _mm256_set1_pd(-0.0);
  const __m256d xa = _mm256_andnot_pd(signmask, x);
  const __m256d z = _mm256_mul_pd(x, x);
  __m256d p = _mm256_fmadd_pd(_mm256_set1_pd(kTanhP0), z,
                              _mm256_set1_pd(kTanhP1));
  p = _mm256_fmadd_pd(p, z, _mm256_set1_pd(kTanhP2));
  __m256d q = _mm256_add_pd(z, _mm256_set1_pd(kTanhQ0));
  q = _mm256_fmadd_pd(q, z, _mm256_set1_pd(kTanhQ1));
  q = _mm256_fmadd_pd(q, z, _mm256_set1_pd(kTanhQ2));
  const __m256d small = _mm256_mul_pd(
      x, _mm256_fmadd_pd(z, _mm256_div_pd(p, q), _mm256_set1_pd(1.0)));
  const __m256d e = vexp4(_mm256_mul_pd(_mm256_set1_pd(-2.0), xa));
  const __m256d one = _mm256_set1_pd(1.0);
  const __m256d big = _mm256_sub_pd(
      one, _mm256_div_pd(_mm256_mul_pd(_mm256_set1_pd(2.0), e),
                         _mm256_add_pd(one, e)));
  const __m256d big_signed = _mm256_or_pd(_mm256_andnot_pd(signmask, big),
                                          _mm256_and_pd(signmask, x));
  const __m256d mask_small =
      _mm256_cmp_pd(xa, _mm256_set1_pd(kTanhSmall), _CMP_LT_OQ);
  return _mm256_blendv_pd(big_signed, small, mask_small);
}

__attribute__((target("avx2,fma"))) inline __m256d vsigmoid4(__m256d x) {
  const __m256d signmask = _mm256_set1_pd(-0.0);
  const __m256d xa = _mm256_andnot_pd(signmask, x);
  const __m256d e = vexp4(_mm256_xor_pd(xa, signmask));
  const __m256d one = _mm256_set1_pd(1.0);
  // blendv keys on the sign bit: negative x (incl. -0) takes e.
  const __m256d num = _mm256_blendv_pd(one, e, x);
  return _mm256_div_pd(num, _mm256_add_pd(one, e));
}

__attribute__((target("avx2,fma"))) void exp_span_avx2(const double* x,
                                                       double* out,
                                                       std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(out + i, vexp4(_mm256_loadu_pd(x + i)));
  }
  for (; i < n; ++i) out[i] = FmaMath::exp(x[i]);
}

__attribute__((target("avx2,fma"))) void tanh_span_avx2(const double* x,
                                                        double* out,
                                                        std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(out + i, vtanh4(_mm256_loadu_pd(x + i)));
  }
  for (; i < n; ++i) out[i] = FmaMath::tanh(x[i]);
}

__attribute__((target("avx2,fma"))) void sigmoid_span_avx2(const double* x,
                                                           double* out,
                                                           std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(out + i, vsigmoid4(_mm256_loadu_pd(x + i)));
  }
  for (; i < n; ++i) out[i] = FmaMath::sigmoid(x[i]);
}

__attribute__((target("avx2,fma"))) void lstm_fwd_avx2(
    std::size_t rows, std::size_t u, double* z, const double* c_prev,
    double* c_new, double* h_new, double* h_out,
    std::size_t h_out_stride) {
  for (std::size_t r = 0; r < rows; ++r) {
    double* zr = z + r * 4 * u;
    const double* cp = c_prev + r * u;
    double* cn = c_new + r * u;
    double* hn = h_new + r * u;
    double* ho = h_out + r * h_out_stride;
    std::size_t i = 0;
    for (; i + 4 <= u; i += 4) {
      const __m256d ig = vsigmoid4(_mm256_loadu_pd(zr + i));
      const __m256d fg = vsigmoid4(_mm256_loadu_pd(zr + u + i));
      const __m256d gg = vtanh4(_mm256_loadu_pd(zr + 2 * u + i));
      const __m256d og = vsigmoid4(_mm256_loadu_pd(zr + 3 * u + i));
      const __m256d c = _mm256_fmadd_pd(fg, _mm256_loadu_pd(cp + i),
                                        _mm256_mul_pd(ig, gg));
      const __m256d h = _mm256_mul_pd(og, vtanh4(c));
      _mm256_storeu_pd(zr + i, ig);
      _mm256_storeu_pd(zr + u + i, fg);
      _mm256_storeu_pd(zr + 2 * u + i, gg);
      _mm256_storeu_pd(zr + 3 * u + i, og);
      _mm256_storeu_pd(cn + i, c);
      _mm256_storeu_pd(hn + i, h);
      _mm256_storeu_pd(ho + i, h);
    }
    for (; i < u; ++i) lstm_fwd_elem<FmaMath>(zr, cp, cn, hn, ho, u, i);
  }
}

__attribute__((target("avx2,fma"))) void lstm_bwd_avx2(
    std::size_t rows, std::size_t u, const double* gates,
    const double* c_prev, const double* c_new, const double* grad_out,
    std::size_t grad_out_stride, const double* dh, double* dc, double* dz,
    double* bias_grad) {
  const __m256d one = _mm256_set1_pd(1.0);
  for (std::size_t r = 0; r < rows; ++r) {
    const double* gr = gates + r * 4 * u;
    const double* cpr = c_prev + r * u;
    const double* cnr = c_new + r * u;
    const double* gor = grad_out + r * grad_out_stride;
    const double* dhr = dh + r * u;
    double* dcr = dc + r * u;
    double* dzr = dz + r * 4 * u;
    std::size_t i = 0;
    for (; i + 4 <= u; i += 4) {
      const __m256d ig = _mm256_loadu_pd(gr + i);
      const __m256d fg = _mm256_loadu_pd(gr + u + i);
      const __m256d gg = _mm256_loadu_pd(gr + 2 * u + i);
      const __m256d og = _mm256_loadu_pd(gr + 3 * u + i);
      const __m256d tanh_c = vtanh4(_mm256_loadu_pd(cnr + i));
      const __m256d dhv =
          _mm256_add_pd(_mm256_loadu_pd(gor + i), _mm256_loadu_pd(dhr + i));
      const __m256d dcv = _mm256_fmadd_pd(
          _mm256_mul_pd(dhv, og),
          _mm256_sub_pd(one, _mm256_mul_pd(tanh_c, tanh_c)),
          _mm256_loadu_pd(dcr + i));
      const __m256d d_og = _mm256_mul_pd(dhv, tanh_c);
      const __m256d d_ig = _mm256_mul_pd(dcv, gg);
      const __m256d d_fg = _mm256_mul_pd(dcv, _mm256_loadu_pd(cpr + i));
      const __m256d d_gg = _mm256_mul_pd(dcv, ig);
      _mm256_storeu_pd(dcr + i, _mm256_mul_pd(dcv, fg));
      _mm256_storeu_pd(
          dzr + i,
          _mm256_mul_pd(d_ig, _mm256_mul_pd(ig, _mm256_sub_pd(one, ig))));
      _mm256_storeu_pd(
          dzr + u + i,
          _mm256_mul_pd(d_fg, _mm256_mul_pd(fg, _mm256_sub_pd(one, fg))));
      _mm256_storeu_pd(
          dzr + 2 * u + i,
          _mm256_mul_pd(d_gg, _mm256_sub_pd(one, _mm256_mul_pd(gg, gg))));
      _mm256_storeu_pd(
          dzr + 3 * u + i,
          _mm256_mul_pd(d_og, _mm256_mul_pd(og, _mm256_sub_pd(one, og))));
    }
    for (; i < u; ++i) {
      lstm_bwd_elem<FmaMath>(gr, cpr, cnr, gor, dhr, dcr, dzr, u, i);
    }
    for (std::size_t j = 0; j < 4 * u; ++j) bias_grad[j] += dzr[j];
  }
}

__attribute__((target("avx2,fma"))) void gru_zr_avx2(std::size_t rows,
                                                     std::size_t u,
                                                     double* a,
                                                     const double* h_prev,
                                                     double* rh) {
  for (std::size_t r = 0; r < rows; ++r) {
    double* ar = a + r * 3 * u;
    const double* hp = h_prev + r * u;
    double* rhr = rh + r * u;
    std::size_t i = 0;
    for (; i + 4 <= u; i += 4) {
      const __m256d zg = vsigmoid4(_mm256_loadu_pd(ar + i));
      const __m256d rg = vsigmoid4(_mm256_loadu_pd(ar + u + i));
      _mm256_storeu_pd(ar + i, zg);
      _mm256_storeu_pd(ar + u + i, rg);
      _mm256_storeu_pd(rhr + i,
                       _mm256_mul_pd(rg, _mm256_loadu_pd(hp + i)));
    }
    for (; i < u; ++i) gru_zr_elem<FmaMath>(ar, hp, rhr, u, i);
  }
}

__attribute__((target("avx2,fma"))) void gru_out_avx2(
    std::size_t rows, std::size_t u, double* a, const double* h_prev,
    double* h_new, double* h_out, std::size_t h_out_stride) {
  const __m256d one = _mm256_set1_pd(1.0);
  for (std::size_t r = 0; r < rows; ++r) {
    double* ar = a + r * 3 * u;
    const double* hp = h_prev + r * u;
    double* hn = h_new + r * u;
    double* ho = h_out + r * h_out_stride;
    std::size_t i = 0;
    for (; i + 4 <= u; i += 4) {
      const __m256d zg = _mm256_loadu_pd(ar + i);
      const __m256d hh = vtanh4(_mm256_loadu_pd(ar + 2 * u + i));
      _mm256_storeu_pd(ar + 2 * u + i, hh);
      const __m256d h = _mm256_fmadd_pd(
          zg, hh,
          _mm256_mul_pd(_mm256_sub_pd(one, zg), _mm256_loadu_pd(hp + i)));
      _mm256_storeu_pd(hn + i, h);
      _mm256_storeu_pd(ho + i, h);
    }
    for (; i < u; ++i) gru_out_elem<FmaMath>(ar, hp, hn, ho, u, i);
  }
}

#endif  // GEONAS_VMATH_X86_DISPATCH

// --- backend dispatch ------------------------------------------------

struct VmathImpl {
  const char* name;
  void (*exp_span)(const double*, double*, std::size_t);
  void (*tanh_span)(const double*, double*, std::size_t);
  void (*sigmoid_span)(const double*, double*, std::size_t);
  void (*lstm_fwd)(std::size_t, std::size_t, double*, const double*,
                   double*, double*, double*, std::size_t);
  void (*lstm_bwd)(std::size_t, std::size_t, const double*, const double*,
                   const double*, const double*, std::size_t, const double*,
                   double*, double*, double*);
  void (*gru_zr)(std::size_t, std::size_t, double*, const double*, double*);
  void (*gru_out)(std::size_t, std::size_t, double*, const double*, double*,
                  double*, std::size_t);
};

VmathImpl select_impl() {
#if defined(GEONAS_SCALAR_MATH)
  return {"scalar-reference",   exp_span_t<RefMath>, tanh_span_t<RefMath>,
          sigmoid_span_t<RefMath>, lstm_fwd_t<RefMath>, lstm_bwd_t<RefMath>,
          gru_zr_t<RefMath>,    gru_out_t<RefMath>};
#else
#ifdef GEONAS_VMATH_X86_DISPATCH
  if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma")) {
    return {"avx2-fma",    exp_span_avx2, tanh_span_avx2, sigmoid_span_avx2,
            lstm_fwd_avx2, lstm_bwd_avx2, gru_zr_avx2,    gru_out_avx2};
  }
#endif
  return {"portable-fma",       exp_span_t<FmaMath>, tanh_span_t<FmaMath>,
          sigmoid_span_t<FmaMath>, lstm_fwd_t<FmaMath>, lstm_bwd_t<FmaMath>,
          gru_zr_t<FmaMath>,    gru_out_t<FmaMath>};
#endif
}

const VmathImpl& impl() {
  static const VmathImpl selected = select_impl();
  return selected;
}

/// Rough per-element cost fed to parallel_for's flops threshold: one
/// polynomial transcendental is ~40 flops, so spans only engage the
/// kernel pool above ~25k elements.
constexpr double kSpanFlopsPerElement = 40.0;

void check_span_sizes(std::span<const double> x, std::span<double> out,
                      const char* what) {
  if (x.size() != out.size()) {
    throw std::invalid_argument(std::string(what) +
                                ": input/output size mismatch");
  }
}

}  // namespace

const char* vmath_backend() noexcept { return impl().name; }

namespace vref {

double exp(double x) noexcept { return RefMath::exp(x); }
double tanh(double x) noexcept { return RefMath::tanh(x); }
double sigmoid(double x) noexcept { return RefMath::sigmoid(x); }

}  // namespace vref

void vexp(std::span<const double> x, std::span<double> out) {
  check_span_sizes(x, out, "vexp");
  const double* xp = x.data();
  double* op = out.data();
  hpc::parallel_for(0, x.size(), kSpanFlopsPerElement *
                    static_cast<double>(x.size()), 4,
                    [&](std::size_t lo, std::size_t hi) {
                      impl().exp_span(xp + lo, op + lo, hi - lo);
                    });
}

void vtanh(std::span<const double> x, std::span<double> out) {
  check_span_sizes(x, out, "vtanh");
  const double* xp = x.data();
  double* op = out.data();
  hpc::parallel_for(0, x.size(), kSpanFlopsPerElement *
                    static_cast<double>(x.size()), 4,
                    [&](std::size_t lo, std::size_t hi) {
                      impl().tanh_span(xp + lo, op + lo, hi - lo);
                    });
}

void vsigmoid(std::span<const double> x, std::span<double> out) {
  check_span_sizes(x, out, "vsigmoid");
  const double* xp = x.data();
  double* op = out.data();
  hpc::parallel_for(0, x.size(), kSpanFlopsPerElement *
                    static_cast<double>(x.size()), 4,
                    [&](std::size_t lo, std::size_t hi) {
                      impl().sigmoid_span(xp + lo, op + lo, hi - lo);
                    });
}

void lstm_pointwise_forward(std::size_t rows, std::size_t units, double* z,
                            const double* c_prev, double* c_new,
                            double* h_new, double* h_out,
                            std::size_t h_out_stride) {
  impl().lstm_fwd(rows, units, z, c_prev, c_new, h_new, h_out, h_out_stride);
}

void lstm_pointwise_backward(std::size_t rows, std::size_t units,
                             const double* gates, const double* c_prev,
                             const double* c_new, const double* grad_out,
                             std::size_t grad_out_stride, const double* dh,
                             double* dc, double* dz, double* bias_grad) {
  impl().lstm_bwd(rows, units, gates, c_prev, c_new, grad_out,
                  grad_out_stride, dh, dc, dz, bias_grad);
}

void gru_pointwise_zr(std::size_t rows, std::size_t units, double* a,
                      const double* h_prev, double* rh) {
  impl().gru_zr(rows, units, a, h_prev, rh);
}

void gru_pointwise_out(std::size_t rows, std::size_t units, double* a,
                       const double* h_prev, double* h_new, double* h_out,
                       std::size_t h_out_stride) {
  impl().gru_out(rows, units, a, h_prev, h_new, h_out, h_out_stride);
}

// The GRU backward stages are plain multiply-add chains (the gate
// activations are already cached), so one backend serves every build:
// results are bitwise-independent of SIMD/backing choices by
// construction.
void gru_pointwise_backward_zh(std::size_t rows, std::size_t units,
                               const double* gates, const double* h_prev,
                               const double* grad_out,
                               std::size_t grad_out_stride, double* dh,
                               double* da) {
  for (std::size_t r = 0; r < rows; ++r) {
    const double* gr = gates + r * 3 * units;
    const double* hp = h_prev + r * units;
    const double* gor = grad_out + r * grad_out_stride;
    double* dhr = dh + r * units;
    double* dar = da + r * 3 * units;
    for (std::size_t i = 0; i < units; ++i) {
      const double zg = gr[i];
      const double hh = gr[2 * units + i];
      const double dhv = gor[i] + dhr[i];
      const double dz = dhv * (hh - hp[i]);
      const double dhh = dhv * zg;
      dar[i] = dz * (zg * (1.0 - zg));
      dar[2 * units + i] = dhh * (1.0 - hh * hh);
      dhr[i] = dhv * (1.0 - zg);
    }
  }
}

void gru_pointwise_backward_r(std::size_t rows, std::size_t units,
                              const double* gates, const double* h_prev,
                              const double* drh, double* dh, double* da,
                              double* bias_grad) {
  for (std::size_t r = 0; r < rows; ++r) {
    const double* gr = gates + r * 3 * units;
    const double* hp = h_prev + r * units;
    const double* drhr = drh + r * units;
    double* dhr = dh + r * units;
    double* dar = da + r * 3 * units;
    for (std::size_t i = 0; i < units; ++i) {
      const double rg = gr[units + i];
      dar[units + i] = drhr[i] * hp[i] * (rg * (1.0 - rg));
      dhr[i] += drhr[i] * rg;
    }
    for (std::size_t j = 0; j < 3 * units; ++j) bias_grad[j] += dar[j];
  }
}

}  // namespace geonas::tensor
