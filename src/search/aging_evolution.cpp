#include "search/aging_evolution.hpp"

#include <stdexcept>

namespace geonas::search {

AgingEvolution::AgingEvolution(const searchspace::StackedLSTMSpace& space,
                               AgingEvolutionConfig config)
    : space_(&space), cfg_(config), rng_(config.seed) {
  if (cfg_.population_size == 0 || cfg_.sample_size == 0) {
    throw std::invalid_argument("AgingEvolution: zero population or sample");
  }
  if (cfg_.sample_size > cfg_.population_size) {
    throw std::invalid_argument(
        "AgingEvolution: sample size exceeds population size");
  }
}

searchspace::Architecture AgingEvolution::ask() {
  // Warm-up: propose random architectures until enough evaluations have
  // returned to fill the population.
  if (population_.size() < cfg_.population_size) {
    return space_->random_architecture(rng_);
  }
  // Tournament: sample s members without replacement, mutate the fittest
  // (or, in the crossover ablation, recombine the two fittest).
  const auto indices =
      rng_.sample_without_replacement(population_.size(), cfg_.sample_size);
  const Member* parent = &population_[indices[0]];
  const Member* runner_up = nullptr;
  for (std::size_t i = 1; i < indices.size(); ++i) {
    const Member& candidate = population_[indices[i]];
    if (candidate.reward > parent->reward) {
      runner_up = parent;
      parent = &candidate;
    } else if (runner_up == nullptr || candidate.reward > runner_up->reward) {
      runner_up = &candidate;
    }
  }
  if (cfg_.crossover_prob > 0.0 && runner_up != nullptr &&
      rng_.bernoulli(cfg_.crossover_prob)) {
    // Uniform crossover: each gene from either parent with equal chance.
    searchspace::Architecture child = parent->arch;
    for (std::size_t g = 0; g < child.genes.size(); ++g) {
      if (rng_.bernoulli(0.5)) child.genes[g] = runner_up->arch.genes[g];
    }
    return child;
  }
  return space_->mutate(parent->arch, rng_);
}

void AgingEvolution::tell(const searchspace::Architecture& arch,
                          double reward) {
  if (!space_->valid(arch)) {
    throw std::invalid_argument("AgingEvolution::tell: foreign architecture");
  }
  population_.push_back({arch, reward});
  // Aging: evict the oldest member once the ring is full, regardless of
  // its fitness.
  while (population_.size() > cfg_.population_size) population_.pop_front();
  ++told_;
}

void AgingEvolution::save(io::BinaryWriter& writer) const {
  writer.u64(cfg_.population_size);
  writer.u64(cfg_.sample_size);
  writer.f64(cfg_.crossover_prob);
  write_rng_state(writer, rng_);
  writer.u64(told_);
  writer.u64(population_.size());
  for (const Member& member : population_) {
    write_architecture(writer, member.arch);
    writer.f64(member.reward);
  }
}

void AgingEvolution::load(io::BinaryReader& reader) {
  const std::uint64_t population_size = reader.u64("AE population size");
  const std::uint64_t sample_size = reader.u64("AE sample size");
  const double crossover_prob = reader.f64("AE crossover prob");
  if (population_size != cfg_.population_size ||
      sample_size != cfg_.sample_size ||
      crossover_prob != cfg_.crossover_prob) {
    throw std::runtime_error(
        "AgingEvolution::load: checkpoint was taken under a different "
        "configuration (population/sample/crossover mismatch)");
  }
  read_rng_state(reader, rng_);
  told_ = reader.u64("AE evaluations told");
  const std::uint64_t members = reader.u64("AE population count");
  if (members > cfg_.population_size) {
    throw std::runtime_error(
        "AgingEvolution::load: population larger than the configured ring");
  }
  population_.clear();
  for (std::uint64_t i = 0; i < members; ++i) {
    searchspace::Architecture arch = read_architecture(reader);
    const double reward = reader.f64("AE member reward");
    if (!space_->valid(arch)) {
      throw std::runtime_error(
          "AgingEvolution::load: checkpointed architecture is not a member "
          "of the current search space");
    }
    population_.push_back({std::move(arch), reward});
  }
}

}  // namespace geonas::search
