#include "search/aging_evolution.hpp"

#include <stdexcept>

namespace geonas::search {

AgingEvolution::AgingEvolution(const searchspace::StackedLSTMSpace& space,
                               AgingEvolutionConfig config)
    : space_(&space), cfg_(config), rng_(config.seed) {
  if (cfg_.population_size == 0 || cfg_.sample_size == 0) {
    throw std::invalid_argument("AgingEvolution: zero population or sample");
  }
  if (cfg_.sample_size > cfg_.population_size) {
    throw std::invalid_argument(
        "AgingEvolution: sample size exceeds population size");
  }
}

searchspace::Architecture AgingEvolution::ask() {
  // Warm-up: propose random architectures until enough evaluations have
  // returned to fill the population.
  if (population_.size() < cfg_.population_size) {
    return space_->random_architecture(rng_);
  }
  // Tournament: sample s members without replacement, mutate the fittest
  // (or, in the crossover ablation, recombine the two fittest).
  const auto indices =
      rng_.sample_without_replacement(population_.size(), cfg_.sample_size);
  const Member* parent = &population_[indices[0]];
  const Member* runner_up = nullptr;
  for (std::size_t i = 1; i < indices.size(); ++i) {
    const Member& candidate = population_[indices[i]];
    if (candidate.reward > parent->reward) {
      runner_up = parent;
      parent = &candidate;
    } else if (runner_up == nullptr || candidate.reward > runner_up->reward) {
      runner_up = &candidate;
    }
  }
  if (cfg_.crossover_prob > 0.0 && runner_up != nullptr &&
      rng_.bernoulli(cfg_.crossover_prob)) {
    // Uniform crossover: each gene from either parent with equal chance.
    searchspace::Architecture child = parent->arch;
    for (std::size_t g = 0; g < child.genes.size(); ++g) {
      if (rng_.bernoulli(0.5)) child.genes[g] = runner_up->arch.genes[g];
    }
    return child;
  }
  return space_->mutate(parent->arch, rng_);
}

void AgingEvolution::tell(const searchspace::Architecture& arch,
                          double reward) {
  if (!space_->valid(arch)) {
    throw std::invalid_argument("AgingEvolution::tell: foreign architecture");
  }
  population_.push_back({arch, reward});
  // Aging: evict the oldest member once the ring is full, regardless of
  // its fitness.
  while (population_.size() > cfg_.population_size) population_.pop_front();
  ++told_;
}

}  // namespace geonas::search
