#include "search/random_search.hpp"

// RandomSearch is header-only; this translation unit anchors the library.
