// Aging evolution (regularized evolution), paper §III-B1 / Real et al. 2019.
//
// A population of p architectures is kept in a FIFO ring: every completed
// evaluation enters the population and evicts the oldest member
// (regardless of fitness — that is the "aging" regularization). To
// propose a new architecture, s members are sampled uniformly without
// replacement, the fittest of the sample is the parent, and a single
// random gene mutation produces the child. Until the population has
// filled, proposals are uniform random. All operations are O(s) and need
// no synchronization with other workers, which is why AE scales (Table III).
#pragma once

#include <cstddef>
#include <deque>

#include "search/search_method.hpp"
#include "searchspace/space.hpp"

namespace geonas::search {

struct AgingEvolutionConfig {
  std::size_t population_size = 100;  // paper: 100
  std::size_t sample_size = 10;       // paper: 10
  /// Probability of producing a child by uniform crossover of the two
  /// fittest sample members instead of a single mutation. The paper's AE
  /// deliberately uses "mutations without crossovers" (§III-B1); this knob
  /// exists for the ablation study and defaults off.
  double crossover_prob = 0.0;
  std::uint64_t seed = 1;
};

class AgingEvolution final : public SearchMethod {
 public:
  AgingEvolution(const searchspace::StackedLSTMSpace& space,
                 AgingEvolutionConfig config = AgingEvolutionConfig{});

  [[nodiscard]] searchspace::Architecture ask() override;
  void tell(const searchspace::Architecture& arch, double reward) override;
  [[nodiscard]] std::string name() const override { return "AE"; }

  /// Checkpointing: population ring + evaluation counter + RNG stream.
  [[nodiscard]] bool checkpointable() const override { return true; }
  void save(io::BinaryWriter& writer) const override;
  void load(io::BinaryReader& reader) override;

  struct Member {
    searchspace::Architecture arch;
    double reward;
  };
  [[nodiscard]] const std::deque<Member>& population() const noexcept {
    return population_;
  }
  [[nodiscard]] std::size_t evaluations_told() const noexcept { return told_; }

 private:
  const searchspace::StackedLSTMSpace* space_;
  AgingEvolutionConfig cfg_;
  Rng rng_;
  std::deque<Member> population_;
  std::size_t told_ = 0;
};

}  // namespace geonas::search
