#include "search/ppo.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "tensor/stats.hpp"

namespace geonas::search {

PPOAgent::PPOAgent(const searchspace::StackedLSTMSpace& space, PPOConfig config,
                   std::uint64_t agent_seed)
    : space_(&space),
      cfg_(config),
      rng_(hash_combine(config.seed, agent_seed)) {
  logits_.reserve(space.num_genes());
  for (std::size_t g = 0; g < space.num_genes(); ++g) {
    logits_.emplace_back(1, space.choices_at(g), 0.0);  // uniform start
  }
}

std::vector<double> PPOAgent::softmax_row(std::size_t gene) const {
  const Matrix& row = logits_[gene];
  double max_logit = row(0, 0);
  for (std::size_t c = 1; c < row.cols(); ++c) {
    max_logit = std::max(max_logit, row(0, c));
  }
  std::vector<double> probs(row.cols());
  double z = 0.0;
  for (std::size_t c = 0; c < row.cols(); ++c) {
    probs[c] = std::exp(row(0, c) - max_logit);
    z += probs[c];
  }
  for (double& p : probs) p /= z;
  return probs;
}

double PPOAgent::action_probability(std::size_t gene,
                                    std::size_t choice) const {
  const auto probs = softmax_row(gene);
  return probs.at(choice);
}

searchspace::Architecture PPOAgent::ask() {
  searchspace::Architecture arch;
  arch.genes.reserve(space_->num_genes());
  for (std::size_t g = 0; g < space_->num_genes(); ++g) {
    const auto probs = softmax_row(g);
    double u = rng_.uniform();
    std::size_t pick = probs.size() - 1;
    for (std::size_t c = 0; c < probs.size(); ++c) {
      if (u < probs[c]) {
        pick = c;
        break;
      }
      u -= probs[c];
    }
    arch.genes.push_back(static_cast<int>(pick));
  }
  return arch;
}

double PPOAgent::log_prob(const std::vector<Matrix>& logits,
                          const searchspace::Architecture& arch) const {
  double lp = 0.0;
  for (std::size_t g = 0; g < logits.size(); ++g) {
    const Matrix& row = logits[g];
    double max_logit = row(0, 0);
    for (std::size_t c = 1; c < row.cols(); ++c) {
      max_logit = std::max(max_logit, row(0, c));
    }
    double z = 0.0;
    for (std::size_t c = 0; c < row.cols(); ++c) {
      z += std::exp(row(0, c) - max_logit);
    }
    const auto a = static_cast<std::size_t>(arch.genes[g]);
    lp += row(0, a) - max_logit - std::log(z);
  }
  return lp;
}

std::vector<Matrix> PPOAgent::compute_gradient(
    const std::vector<Sample>& batch) {
  if (batch.empty()) {
    throw std::invalid_argument("PPOAgent::compute_gradient: empty batch");
  }
  for (const Sample& s : batch) {
    if (!space_->valid(s.arch)) {
      throw std::invalid_argument("PPOAgent: foreign architecture in batch");
    }
  }

  // Advantage: batch-standardized reward (the value baseline).
  std::vector<double> rewards(batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) rewards[i] = batch[i].reward;
  const double baseline = mean(rewards);
  double sd = stddev(rewards);
  if (sd < 1e-8) sd = 1.0;
  std::vector<double> advantage(batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    advantage[i] = (rewards[i] - baseline) / sd;
  }

  // Old-policy log-probabilities are frozen at batch start.
  std::vector<double> old_lp(batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    old_lp[i] = log_prob(logits_, batch[i].arch);
  }

  // Several clipped-surrogate SGD epochs on a scratch copy; the returned
  // gradient is the total ascent direction (new - start) / lr so that
  // apply_gradient(all-reduced mean) moves every agent identically.
  std::vector<Matrix> theta = logits_;
  const std::size_t n = batch.size();

  for (std::size_t epoch = 0; epoch < cfg_.sgd_epochs; ++epoch) {
    // Per-gene softmax under the scratch policy.
    std::vector<std::vector<double>> probs(theta.size());
    for (std::size_t g = 0; g < theta.size(); ++g) {
      const Matrix& row = theta[g];
      double mx = row(0, 0);
      for (std::size_t c = 1; c < row.cols(); ++c) mx = std::max(mx, row(0, c));
      double z = 0.0;
      probs[g].resize(row.cols());
      for (std::size_t c = 0; c < row.cols(); ++c) {
        probs[g][c] = std::exp(row(0, c) - mx);
        z += probs[g][c];
      }
      for (double& p : probs[g]) p /= z;
    }

    std::vector<Matrix> grad;
    grad.reserve(theta.size());
    for (const Matrix& row : theta) grad.emplace_back(1, row.cols(), 0.0);

    for (std::size_t i = 0; i < n; ++i) {
      const double new_lp = log_prob(theta, batch[i].arch);
      const double ratio = std::exp(new_lp - old_lp[i]);
      const double a = advantage[i];
      // Clipped surrogate (eq. 9): gradient only flows when the unclipped
      // branch is active.
      const bool clipped = (a > 0.0 && ratio > 1.0 + cfg_.clip_epsilon) ||
                           (a < 0.0 && ratio < 1.0 - cfg_.clip_epsilon);
      if (clipped) continue;
      const double scale = ratio * a / static_cast<double>(n);
      for (std::size_t g = 0; g < theta.size(); ++g) {
        const auto act = static_cast<std::size_t>(batch[i].arch.genes[g]);
        // d log pi / d theta_{g,c} = [c == act] - pi_c.
        for (std::size_t c = 0; c < probs[g].size(); ++c) {
          grad[g](0, c) += scale * ((c == act ? 1.0 : 0.0) - probs[g][c]);
        }
      }
    }

    // Entropy bonus: dH/dtheta_c = -pi_c * (log pi_c + H).
    for (std::size_t g = 0; g < theta.size(); ++g) {
      double entropy = 0.0;
      for (double p : probs[g]) {
        if (p > 0.0) entropy -= p * std::log(p);
      }
      for (std::size_t c = 0; c < probs[g].size(); ++c) {
        const double p = probs[g][c];
        if (p > 0.0) {
          grad[g](0, c) += -cfg_.entropy_coef * p * (std::log(p) + entropy);
        }
      }
    }

    for (std::size_t g = 0; g < theta.size(); ++g) {
      for (std::size_t c = 0; c < theta[g].cols(); ++c) {
        theta[g](0, c) += cfg_.learning_rate * grad[g](0, c);
      }
    }
  }

  std::vector<Matrix> total;
  total.reserve(theta.size());
  for (std::size_t g = 0; g < theta.size(); ++g) {
    Matrix d(1, theta[g].cols());
    for (std::size_t c = 0; c < d.cols(); ++c) {
      d(0, c) = (theta[g](0, c) - logits_[g](0, c)) / cfg_.learning_rate;
    }
    total.push_back(std::move(d));
  }
  return total;
}

void PPOAgent::apply_gradient(const std::vector<Matrix>& gradient) {
  if (gradient.size() != logits_.size()) {
    throw std::invalid_argument("PPOAgent::apply_gradient: stack size clash");
  }
  for (std::size_t g = 0; g < logits_.size(); ++g) {
    require_same_shape(logits_[g], gradient[g], "apply_gradient");
    for (std::size_t c = 0; c < logits_[g].cols(); ++c) {
      logits_[g](0, c) += cfg_.learning_rate * gradient[g](0, c);
    }
  }
}

void PPOAgent::save(io::BinaryWriter& writer) const {
  write_rng_state(writer, rng_);
  writer.u64(logits_.size());
  for (const Matrix& row : logits_) {
    const auto flat = row.flat();
    writer.f64_array(flat.data(), flat.size());
  }
}

void PPOAgent::load(io::BinaryReader& reader) {
  read_rng_state(reader, rng_);
  const std::uint64_t genes = reader.u64("PPO logit row count");
  if (genes != logits_.size()) {
    throw std::runtime_error(
        "PPOAgent::load: checkpoint has " + std::to_string(genes) +
        " logit rows, this search space needs " +
        std::to_string(logits_.size()));
  }
  for (Matrix& row : logits_) {
    const auto values = reader.f64_array("PPO logits");
    auto flat = row.flat();
    if (values.size() != flat.size()) {
      throw std::runtime_error(
          "PPOAgent::load: logit row width mismatch (checkpointed space "
          "differs from the current one)");
    }
    std::copy(values.begin(), values.end(), flat.begin());
  }
}

PPOSearch::PPOSearch(const searchspace::StackedLSTMSpace& space,
                     PPOConfig config, std::size_t batch_size)
    : space_(&space), batch_size_(batch_size), agent_(space, config, 0) {
  if (batch_size_ == 0) {
    throw std::invalid_argument("PPOSearch: zero batch size");
  }
}

searchspace::Architecture PPOSearch::ask() { return agent_.ask(); }

void PPOSearch::tell(const searchspace::Architecture& arch, double reward) {
  if (!space_->valid(arch)) {
    throw std::invalid_argument("PPOSearch::tell: foreign architecture");
  }
  batch_.push_back({arch, reward});
  ++told_;
  if (batch_.size() >= batch_size_) {
    // One-agent all-reduce degenerates to applying the own gradient.
    agent_.apply_gradient(agent_.compute_gradient(batch_));
    batch_.clear();
    ++updates_;
  }
}

void PPOSearch::save(io::BinaryWriter& writer) const {
  writer.u64(batch_size_);
  agent_.save(writer);
  writer.u64(told_);
  writer.u64(updates_);
  writer.u64(batch_.size());
  for (const PPOAgent::Sample& sample : batch_) {
    write_architecture(writer, sample.arch);
    writer.f64(sample.reward);
  }
}

void PPOSearch::load(io::BinaryReader& reader) {
  const std::uint64_t batch_size = reader.u64("PPO batch size");
  if (batch_size != batch_size_) {
    throw std::runtime_error(
        "PPOSearch::load: checkpoint batch size " +
        std::to_string(batch_size) + " != configured " +
        std::to_string(batch_size_));
  }
  agent_.load(reader);
  told_ = reader.u64("PPO evaluations told");
  updates_ = reader.u64("PPO update count");
  const std::uint64_t pending = reader.u64("PPO pending batch count");
  if (pending >= batch_size_) {
    throw std::runtime_error(
        "PPOSearch::load: pending batch exceeds the batch size");
  }
  batch_.clear();
  for (std::uint64_t i = 0; i < pending; ++i) {
    searchspace::Architecture arch = read_architecture(reader);
    const double reward = reader.f64("PPO pending reward");
    if (!space_->valid(arch)) {
      throw std::runtime_error(
          "PPOSearch::load: checkpointed sample is not a member of the "
          "current search space");
    }
    batch_.push_back({std::move(arch), reward});
  }
}

std::vector<Matrix> all_reduce_mean_gradients(
    const std::vector<std::vector<Matrix>>& per_agent) {
  if (per_agent.empty()) {
    throw std::invalid_argument("all_reduce_mean_gradients: no agents");
  }
  std::vector<Matrix> out = per_agent[0];
  for (std::size_t a = 1; a < per_agent.size(); ++a) {
    if (per_agent[a].size() != out.size()) {
      throw std::invalid_argument(
          "all_reduce_mean_gradients: agent stack size clash");
    }
    for (std::size_t g = 0; g < out.size(); ++g) {
      out[g] += per_agent[a][g];
    }
  }
  const double inv = 1.0 / static_cast<double>(per_agent.size());
  for (Matrix& m : out) m *= inv;
  return out;
}

}  // namespace geonas::search
