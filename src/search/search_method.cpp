#include "search/search_method.hpp"

#include <limits>

namespace geonas::search {

void write_rng_state(io::BinaryWriter& writer, const Rng& rng) {
  const Rng::State state = rng.state();
  for (const std::uint64_t word : state.s) writer.u64(word);
  writer.f64(state.cached_normal);
  writer.u8(state.has_cached_normal ? 1 : 0);
}

void read_rng_state(io::BinaryReader& reader, Rng& rng) {
  Rng::State state;
  for (std::uint64_t& word : state.s) word = reader.u64("rng state word");
  state.cached_normal = reader.f64("rng cached normal");
  state.has_cached_normal = reader.u8("rng cached flag") != 0;
  rng.set_state(state);
}

void write_architecture(io::BinaryWriter& writer,
                        const searchspace::Architecture& arch) {
  writer.u64(arch.genes.size());
  for (const int gene : arch.genes) {
    writer.u32(static_cast<std::uint32_t>(gene));
  }
}

searchspace::Architecture read_architecture(io::BinaryReader& reader) {
  const std::uint64_t count = reader.u64("architecture gene count");
  if (count > 4096) {
    throw std::runtime_error(
        "read_architecture: implausible gene count " + std::to_string(count));
  }
  searchspace::Architecture arch;
  arch.genes.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t g = 0; g < count; ++g) {
    const std::uint32_t gene = reader.u32("architecture gene");
    if (gene > static_cast<std::uint32_t>(std::numeric_limits<int>::max())) {
      throw std::runtime_error("read_architecture: gene value out of range");
    }
    arch.genes.push_back(static_cast<int>(gene));
  }
  return arch;
}

}  // namespace geonas::search
