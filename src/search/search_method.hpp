// Asynchronous ask/tell interface for NAS search strategies.
//
// Aging evolution and random search are completely asynchronous (paper
// §III-B): any worker may request a new architecture (ask) or report a
// finished evaluation (tell) at any time, in any interleaving. The
// reinforcement-learning strategy is batch-synchronous and exposes its own
// agent API (see ppo.hpp); the cluster simulator drives it with explicit
// barriers, as DeepHyper's multimaster-multiworker mode does.
#pragma once

#include <stdexcept>
#include <string>

#include "io/binary.hpp"
#include "searchspace/architecture.hpp"
#include "tensor/random.hpp"

namespace geonas::search {

class SearchMethod {
 public:
  virtual ~SearchMethod() = default;

  /// Proposes the next architecture to evaluate. May be called repeatedly
  /// before any tell() (many workers start simultaneously).
  [[nodiscard]] virtual searchspace::Architecture ask() = 0;

  /// Reports a finished evaluation (reward = validation R^2).
  virtual void tell(const searchspace::Architecture& arch, double reward) = 0;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Checkpointing (fault-tolerant campaigns). A checkpointable method
  /// serializes its complete mutable state — RNG streams included — into
  /// the writer, such that load() followed by the same ask()/tell()
  /// sequence reproduces an uninterrupted run bitwise. Methods that do
  /// not opt in throw.
  [[nodiscard]] virtual bool checkpointable() const { return false; }
  virtual void save(io::BinaryWriter& /*writer*/) const {
    throw std::logic_error(name() + ": checkpointing not supported");
  }
  virtual void load(io::BinaryReader& /*reader*/) {
    throw std::logic_error(name() + ": checkpointing not supported");
  }
};

/// Shared helpers for serializing common state pieces (keeps the per-method
/// save/load implementations symmetric and the format auditable).
void write_rng_state(io::BinaryWriter& writer, const Rng& rng);
void read_rng_state(io::BinaryReader& reader, Rng& rng);
void write_architecture(io::BinaryWriter& writer,
                        const searchspace::Architecture& arch);
[[nodiscard]] searchspace::Architecture read_architecture(
    io::BinaryReader& reader);

}  // namespace geonas::search
