// Asynchronous ask/tell interface for NAS search strategies.
//
// Aging evolution and random search are completely asynchronous (paper
// §III-B): any worker may request a new architecture (ask) or report a
// finished evaluation (tell) at any time, in any interleaving. The
// reinforcement-learning strategy is batch-synchronous and exposes its own
// agent API (see ppo.hpp); the cluster simulator drives it with explicit
// barriers, as DeepHyper's multimaster-multiworker mode does.
#pragma once

#include <string>

#include "searchspace/architecture.hpp"

namespace geonas::search {

class SearchMethod {
 public:
  virtual ~SearchMethod() = default;

  /// Proposes the next architecture to evaluate. May be called repeatedly
  /// before any tell() (many workers start simultaneously).
  [[nodiscard]] virtual searchspace::Architecture ask() = 0;

  /// Reports a finished evaluation (reward = validation R^2).
  virtual void tell(const searchspace::Architecture& arch, double reward) = 0;

  [[nodiscard]] virtual std::string name() const = 0;
};

}  // namespace geonas::search
