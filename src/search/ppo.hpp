// Distributed proximal-policy-optimization NAS (paper §III-B2, eq. 9).
//
// Each agent owns a factorized categorical policy over the architecture
// genes: independent softmax logits per variable node. Actions are full
// gene vectors; the reward is the validation R^2 of the trained child
// network. Updates use the PPO clipped surrogate
//     J(theta) = E[ min(r A, clip(r, 1-eps, 1+eps) A) ]
// with r the new/old action-probability ratio, a per-batch advantage
// baseline, and an entropy bonus, run for several SGD epochs per batch.
//
// Parallel structure mirrors DeepHyper's multimaster-multiworker mode:
// every agent gathers a batch of b evaluations from its workers (a
// synchronous barrier), computes its local gradient, and the agents
// all-reduce gradients with the mean before stepping — so agent policies
// stay bitwise identical. The cluster simulator and the real thread-pool
// driver both orchestrate agents through this API.
#pragma once

#include <cstddef>
#include <vector>

#include "search/search_method.hpp"
#include "searchspace/space.hpp"
#include "tensor/matrix.hpp"
#include "tensor/random.hpp"

namespace geonas::search {

struct PPOConfig {
  double clip_epsilon = 0.2;     // eq. 9 epsilon (paper: 0.1 or 0.2)
  double learning_rate = 2.0;    // policy SGD step (clip caps each round)
  double entropy_coef = 0.003;   // exploration bonus
  std::size_t sgd_epochs = 12;   // surrogate epochs per batch
  std::uint64_t seed = 1;
};

class PPOAgent {
 public:
  PPOAgent(const searchspace::StackedLSTMSpace& space, PPOConfig config,
           std::uint64_t agent_seed);

  /// Samples an architecture from the current policy.
  [[nodiscard]] searchspace::Architecture ask();

  struct Sample {
    searchspace::Architecture arch;
    double reward;
  };

  /// Computes this agent's PPO policy gradient from a finished batch.
  /// Does NOT update the policy: gradients from all agents must be
  /// all-reduced (mean) first. Returns one gradient matrix per gene.
  [[nodiscard]] std::vector<Matrix> compute_gradient(
      const std::vector<Sample>& batch);

  /// Applies an (averaged) gradient: theta += lr * grad (ascent).
  void apply_gradient(const std::vector<Matrix>& gradient);

  /// Policy logits, one 1 x choices row per gene (tests / inspection).
  [[nodiscard]] const std::vector<Matrix>& logits() const noexcept {
    return logits_;
  }
  /// Probability of choosing `choice` at `gene` under the current policy.
  [[nodiscard]] double action_probability(std::size_t gene,
                                          std::size_t choice) const;

  /// Checkpointing: policy logits + RNG stream (the agent's whole mutable
  /// state — compute_gradient works on a scratch copy).
  void save(io::BinaryWriter& writer) const;
  void load(io::BinaryReader& reader);

 private:
  [[nodiscard]] std::vector<double> softmax_row(std::size_t gene) const;
  /// log pi(arch) under given logits.
  [[nodiscard]] double log_prob(const std::vector<Matrix>& logits,
                                const searchspace::Architecture& arch) const;

  const searchspace::StackedLSTMSpace* space_;
  PPOConfig cfg_;
  Rng rng_;
  std::vector<Matrix> logits_;
};

/// Element-wise mean of per-agent gradient stacks (the all-reduce of
/// paper §III-B2). All stacks must have identical shapes.
[[nodiscard]] std::vector<Matrix> all_reduce_mean_gradients(
    const std::vector<std::vector<Matrix>>& per_agent);

/// Serial single-agent PPO behind the ask/tell SearchMethod interface.
///
/// Collects `batch_size` finished evaluations, then runs one clipped-
/// surrogate policy update (the degenerate one-agent case of the paper's
/// multi-agent all-reduce) and starts the next batch. This is the local /
/// CLI / checkpointing face of the RL strategy; the cluster simulator
/// keeps driving the full 11-agent synchronous form through PPOAgent
/// directly.
class PPOSearch final : public SearchMethod {
 public:
  PPOSearch(const searchspace::StackedLSTMSpace& space, PPOConfig config,
            std::size_t batch_size = 16);

  [[nodiscard]] searchspace::Architecture ask() override;
  void tell(const searchspace::Architecture& arch, double reward) override;
  [[nodiscard]] std::string name() const override { return "PPO"; }

  /// Checkpointing: agent policy + RNG, the partially collected batch,
  /// and counters.
  [[nodiscard]] bool checkpointable() const override { return true; }
  void save(io::BinaryWriter& writer) const override;
  void load(io::BinaryReader& reader) override;

  [[nodiscard]] std::size_t evaluations_told() const noexcept { return told_; }
  [[nodiscard]] std::size_t updates() const noexcept { return updates_; }
  [[nodiscard]] const PPOAgent& agent() const noexcept { return agent_; }

 private:
  const searchspace::StackedLSTMSpace* space_;
  std::size_t batch_size_;
  PPOAgent agent_;
  std::vector<PPOAgent::Sample> batch_;
  std::size_t told_ = 0;
  std::size_t updates_ = 0;
};

}  // namespace geonas::search
