// Uniform random search (paper §III-B3): embarrassingly parallel, no
// feedback — each ask() draws an independent uniform architecture.
#pragma once

#include "search/search_method.hpp"
#include "searchspace/space.hpp"

namespace geonas::search {

class RandomSearch final : public SearchMethod {
 public:
  explicit RandomSearch(const searchspace::StackedLSTMSpace& space,
                        std::uint64_t seed = 1)
      : space_(&space), rng_(seed) {}

  [[nodiscard]] searchspace::Architecture ask() override {
    return space_->random_architecture(rng_);
  }
  void tell(const searchspace::Architecture& /*arch*/,
            double /*reward*/) override {
    ++told_;
  }
  [[nodiscard]] std::string name() const override { return "RS"; }

  /// Checkpointing: the RNG stream and the evaluation counter are the
  /// whole state.
  [[nodiscard]] bool checkpointable() const override { return true; }
  void save(io::BinaryWriter& writer) const override {
    write_rng_state(writer, rng_);
    writer.u64(told_);
  }
  void load(io::BinaryReader& reader) override {
    read_rng_state(reader, rng_);
    told_ = reader.u64("RS evaluations told");
  }

  [[nodiscard]] std::size_t evaluations_told() const noexcept { return told_; }

 private:
  const searchspace::StackedLSTMSpace* space_;
  Rng rng_;
  std::size_t told_ = 0;
};

}  // namespace geonas::search
