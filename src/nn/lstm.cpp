#include "nn/lstm.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "tensor/blas.hpp"
#include "tensor/vmath.hpp"

namespace geonas::nn {

LSTM::LSTM(std::size_t in_features, std::size_t units)
    : in_(in_features),
      units_(units),
      wx_(in_features, 4 * units),
      wh_(units, 4 * units),
      b_(1, 4 * units),
      wx_grad_(in_features, 4 * units),
      wh_grad_(units, 4 * units),
      b_grad_(1, 4 * units) {
  if (in_ == 0 || units_ == 0) {
    throw std::invalid_argument("LSTM: zero-sized dimension");
  }
}

void LSTM::init_params(Rng& rng) {
  const double limit = std::sqrt(6.0 / static_cast<double>(in_ + 4 * units_));
  for (double& v : wx_.flat()) v = rng.uniform(-limit, limit);
  // Scaled-normal recurrent init (a cheap stand-in for orthogonal init that
  // keeps recurrent spectra near unit scale for the small units used here).
  const double rscale = 1.0 / std::sqrt(static_cast<double>(units_));
  for (double& v : wh_.flat()) v = rng.normal(0.0, rscale);
  b_.fill(0.0);
  // Unit forget-gate bias: the standard trick (and Keras default) that lets
  // gradients flow through time early in training.
  for (std::size_t j = units_; j < 2 * units_; ++j) b_(0, j) = 1.0;
}

void LSTM::bind_workspace(tensor::Arena& arena, std::size_t batch,
                          std::size_t steps, std::size_t in_features) {
  if (in_features != in_) {
    throw std::invalid_argument("LSTM: input feature dim " +
                                std::to_string(in_features) + " != " +
                                std::to_string(in_));
  }
  const std::size_t g4 = 4 * units_;
  const std::size_t rows = batch * steps;
  x_tm_.bind(arena, rows, in_);
  gates_.bind(arena, rows, g4);
  h_seq_.bind(arena, (steps + 1) * batch, units_);
  c_seq_.bind(arena, (steps + 1) * batch, units_);
  dz_.bind(arena, rows, g4);
  dh_.bind(arena, batch, units_);
  dc_.bind(arena, batch, units_);
  dx_tm_.bind(arena, rows, in_);
  ws_batch_ = batch;
  ws_steps_ = steps;
}

void LSTM::forward_into(std::span<const Tensor3* const> inputs, Tensor3& out,
                        bool training) {
  const Tensor3& x = single_input(inputs, "LSTM");
  const std::size_t batch = x.dim0(), steps = x.dim1();
  if (batch != ws_batch_ || steps != ws_steps_ || x.dim2() != in_) {
    bind_workspace(self_arena(), batch, steps, x.dim2());
  }
  const std::size_t g4 = 4 * units_;
  const std::size_t rows = batch * steps;

  // Gather the batch-major input into time-major rows t*B + b so each
  // timestep's slab is contiguous.
  for (std::size_t bi = 0; bi < batch; ++bi) {
    const double* src = x.flat().data() + bi * steps * in_;
    for (std::size_t t = 0; t < steps; ++t) {
      std::copy(src + t * in_, src + (t + 1) * in_,
                x_tm_.row_span(t * batch + bi).begin());
    }
  }

  // Weight panels: packed once, re-validated per pass (a version-counter
  // compare unless the optimizer touched the weights since last pack).
  wx_pack_.ensure(wx_, Trans::kNone);
  wh_pack_.ensure(wh_, Trans::kNone);

  // Input projection for the entire sequence in one GEMM, then the bias.
  gemm_raw(Trans::kNone, rows, 1.0, x_tm_.flat().data(), in_, wx_pack_, 0.0,
           gates_.flat().data(), g4);
  const double* bias = b_.flat().data();
  for (std::size_t r = 0; r < rows; ++r) {
    double* zrow = gates_.flat().data() + r * g4;
    for (std::size_t j = 0; j < g4; ++j) zrow[j] += bias[j];
  }

  for (std::size_t t = 0; t < steps; ++t) {
    // z_t += h_{t-1} Wh: one (B, units) x (units, 4*units) GEMM.
    double* z = gates_.flat().data() + t * batch * g4;
    const double* h_prev = h_seq_.flat().data() + t * batch * units_;
    gemm_raw(Trans::kNone, batch, 1.0, h_prev, units_, wh_pack_, 1.0, z, g4);
    // Fused gate nonlinearities + state update (tensor::vmath); gates_
    // holds post-activation values afterwards (what BPTT needs), and the
    // hidden state is scattered straight into the batch-major output.
    const double* c_prev = c_seq_.flat().data() + t * batch * units_;
    double* c_new = c_seq_.flat().data() + (t + 1) * batch * units_;
    double* h_new = h_seq_.flat().data() + (t + 1) * batch * units_;
    tensor::lstm_pointwise_forward(batch, units_, z, c_prev, c_new, h_new,
                                   out.flat().data() + t * units_,
                                   steps * units_);
  }

  (void)training;  // the workspaces double as the BPTT caches
}

void LSTM::backward_into(const Tensor3& grad_output,
                         std::span<Tensor3* const> input_grads) {
  const std::size_t batch = ws_batch_, steps = ws_steps_;
  if (grad_output.dim0() != batch || grad_output.dim1() != steps ||
      grad_output.dim2() != units_ || input_grads.size() != 1 ||
      input_grads[0] == nullptr) {
    throw std::invalid_argument("LSTM::backward: gradient shape mismatch");
  }
  const std::size_t g4 = 4 * units_;
  const std::size_t rows = batch * steps;

  // dh_/dc_ carry state across timesteps and must start the recursion at
  // zero; every other workspace is fully overwritten below.
  dh_.fill(0.0);
  dc_.fill(0.0);

  // Transposed weight panels for the input-gradient GEMMs (packed once;
  // transposition happened at pack time, so BPTT reads them forward).
  wh_t_pack_.ensure(wh_, Trans::kTranspose);
  wx_t_pack_.ensure(wx_, Trans::kTranspose);

  double* bg = b_grad_.flat().data();

  for (std::size_t t = steps; t-- > 0;) {
    const double* gates = gates_.flat().data() + t * batch * g4;
    const double* c_new = c_seq_.flat().data() + (t + 1) * batch * units_;
    const double* c_prev = c_seq_.flat().data() + t * batch * units_;
    const double* h_prev = h_seq_.flat().data() + t * batch * units_;
    double* dz = dz_.flat().data() + t * batch * g4;

    // Fused elementwise gate backward for the whole timestep slab
    // (tensor::vmath); dh_/dc_ carry dL/dh_t, dL/dc_t in and leave
    // dL/dc_{t-1} behind (dh_{t-1} is produced by the GEMM below), and
    // the bias gradient accumulates in deterministic row order.
    tensor::lstm_pointwise_backward(batch, units_, gates, c_prev, c_new,
                                    grad_output.flat().data() + t * units_,
                                    steps * units_, dh_.flat().data(),
                                    dc_.flat().data(), dz, bg);

    // Wh_grad += H_{t-1}^T dZ_t and dH_{t-1} = dZ_t Wh^T: one GEMM each.
    gemm_raw(Trans::kTranspose, Trans::kNone, units_, g4, batch, 1.0, h_prev,
             units_, dz, g4, 1.0, wh_grad_.flat().data(), g4);
    gemm_raw(Trans::kNone, batch, 1.0, dz, g4, wh_t_pack_, 0.0,
             dh_.flat().data(), units_);
  }

  // Whole-sequence slab GEMMs: Wx_grad += X^T dZ and dX = dZ Wx^T.
  gemm_raw(Trans::kTranspose, Trans::kNone, in_, g4, rows, 1.0,
           x_tm_.flat().data(), in_, dz_.flat().data(), g4, 1.0,
           wx_grad_.flat().data(), g4);
  gemm_raw(Trans::kNone, rows, 1.0, dz_.flat().data(), g4, wx_t_pack_, 0.0,
           dx_tm_.flat().data(), in_);

  // Scatter time-major dX back to batch-major [B, T, in].
  Tensor3& dx = *input_grads[0];
  for (std::size_t bi = 0; bi < batch; ++bi) {
    double* dst = dx.flat().data() + bi * steps * in_;
    for (std::size_t t = 0; t < steps; ++t) {
      const auto src = dx_tm_.row_span(t * batch + bi);
      std::copy(src.begin(), src.end(), dst + t * in_);
    }
  }
}

void LSTM::repack_weights() {
  wx_pack_.ensure(wx_, Trans::kNone);
  wh_pack_.ensure(wh_, Trans::kNone);
  wh_t_pack_.ensure(wh_, Trans::kTranspose);
  wx_t_pack_.ensure(wx_, Trans::kTranspose);
}

std::vector<Matrix*> LSTM::parameters() { return {&wx_, &wh_, &b_}; }
std::vector<Matrix*> LSTM::gradients() {
  return {&wx_grad_, &wh_grad_, &b_grad_};
}

std::string LSTM::name() const {
  return "LSTM(" + std::to_string(units_) + ")";
}

}  // namespace geonas::nn
