#include "nn/lstm.hpp"

#include <cmath>
#include <stdexcept>
#include <vector>

#include "nn/activations.hpp"

namespace geonas::nn {

LSTM::LSTM(std::size_t in_features, std::size_t units)
    : in_(in_features),
      units_(units),
      wx_(in_features, 4 * units),
      wh_(units, 4 * units),
      b_(1, 4 * units),
      wx_grad_(in_features, 4 * units),
      wh_grad_(units, 4 * units),
      b_grad_(1, 4 * units) {
  if (in_ == 0 || units_ == 0) {
    throw std::invalid_argument("LSTM: zero-sized dimension");
  }
}

void LSTM::init_params(Rng& rng) {
  const double limit = std::sqrt(6.0 / static_cast<double>(in_ + 4 * units_));
  for (double& v : wx_.flat()) v = rng.uniform(-limit, limit);
  // Scaled-normal recurrent init (a cheap stand-in for orthogonal init that
  // keeps recurrent spectra near unit scale for the small units used here).
  const double rscale = 1.0 / std::sqrt(static_cast<double>(units_));
  for (double& v : wh_.flat()) v = rng.normal(0.0, rscale);
  b_.fill(0.0);
  // Unit forget-gate bias: the standard trick (and Keras default) that lets
  // gradients flow through time early in training.
  for (std::size_t j = units_; j < 2 * units_; ++j) b_(0, j) = 1.0;
}

Tensor3 LSTM::forward(std::span<const Tensor3* const> inputs, bool training) {
  const Tensor3& x = single_input(inputs, "LSTM");
  if (x.dim2() != in_) {
    throw std::invalid_argument("LSTM: input feature dim " +
                                std::to_string(x.dim2()) + " != " +
                                std::to_string(in_));
  }
  const std::size_t batch = x.dim0(), steps = x.dim1();
  const std::size_t g4 = 4 * units_;

  Tensor3 h_seq(batch, steps + 1, units_);
  Tensor3 c_seq(batch, steps + 1, units_);
  Tensor3 gates(batch, steps, g4);
  Tensor3 out(batch, steps, units_);

  const double* wxp = wx_.flat().data();
  const double* whp = wh_.flat().data();
  std::vector<double> z(g4);

  for (std::size_t bi = 0; bi < batch; ++bi) {
    for (std::size_t t = 0; t < steps; ++t) {
      // z = x_t Wx + h_{t-1} Wh + b
      for (std::size_t j = 0; j < g4; ++j) z[j] = b_(0, j);
      for (std::size_t k = 0; k < in_; ++k) {
        const double xv = x(bi, t, k);
        if (xv == 0.0) continue;
        const double* wrow = wxp + k * g4;
        for (std::size_t j = 0; j < g4; ++j) z[j] += xv * wrow[j];
      }
      for (std::size_t k = 0; k < units_; ++k) {
        const double hv = h_seq(bi, t, k);
        if (hv == 0.0) continue;
        const double* wrow = whp + k * g4;
        for (std::size_t j = 0; j < g4; ++j) z[j] += hv * wrow[j];
      }
      for (std::size_t u = 0; u < units_; ++u) {
        const double ig = sigmoid(z[u]);
        const double fg = sigmoid(z[units_ + u]);
        const double gg = tanh_act(z[2 * units_ + u]);
        const double og = sigmoid(z[3 * units_ + u]);
        const double c_new = fg * c_seq(bi, t, u) + ig * gg;
        const double h_new = og * tanh_act(c_new);
        gates(bi, t, u) = ig;
        gates(bi, t, units_ + u) = fg;
        gates(bi, t, 2 * units_ + u) = gg;
        gates(bi, t, 3 * units_ + u) = og;
        c_seq(bi, t + 1, u) = c_new;
        h_seq(bi, t + 1, u) = h_new;
        out(bi, t, u) = h_new;
      }
    }
  }

  if (training) {
    input_cache_ = x;
    h_cache_ = std::move(h_seq);
    c_cache_ = std::move(c_seq);
    gates_cache_ = std::move(gates);
  }
  return out;
}

std::vector<Tensor3> LSTM::backward(const Tensor3& grad_output) {
  const std::size_t batch = input_cache_.dim0(), steps = input_cache_.dim1();
  if (grad_output.dim0() != batch || grad_output.dim1() != steps ||
      grad_output.dim2() != units_) {
    throw std::invalid_argument("LSTM::backward: gradient shape mismatch");
  }
  const std::size_t g4 = 4 * units_;

  Tensor3 dx(batch, steps, in_);
  const double* wxp = wx_.flat().data();
  const double* whp = wh_.flat().data();
  double* wxg = wx_grad_.flat().data();
  double* whg = wh_grad_.flat().data();

  std::vector<double> dh(units_), dc(units_), dz(g4), dh_next(units_),
      dc_next(units_);

  for (std::size_t bi = 0; bi < batch; ++bi) {
    std::fill(dh_next.begin(), dh_next.end(), 0.0);
    std::fill(dc_next.begin(), dc_next.end(), 0.0);
    for (std::size_t t = steps; t-- > 0;) {
      for (std::size_t u = 0; u < units_; ++u) {
        dh[u] = grad_output(bi, t, u) + dh_next[u];
        dc[u] = dc_next[u];
      }
      for (std::size_t u = 0; u < units_; ++u) {
        const double ig = gates_cache_(bi, t, u);
        const double fg = gates_cache_(bi, t, units_ + u);
        const double gg = gates_cache_(bi, t, 2 * units_ + u);
        const double og = gates_cache_(bi, t, 3 * units_ + u);
        const double c_new = c_cache_(bi, t + 1, u);
        const double tanh_c = tanh_act(c_new);

        // h = o * tanh(c): route dh into o-gate and the cell state.
        const double d_og = dh[u] * tanh_c;
        dc[u] += dh[u] * og * tanh_grad_from_value(tanh_c);

        const double c_prev = c_cache_(bi, t, u);
        const double d_ig = dc[u] * gg;
        const double d_fg = dc[u] * c_prev;
        const double d_gg = dc[u] * ig;
        dc_next[u] = dc[u] * fg;

        dz[u] = d_ig * sigmoid_grad_from_value(ig);
        dz[units_ + u] = d_fg * sigmoid_grad_from_value(fg);
        dz[2 * units_ + u] = d_gg * tanh_grad_from_value(gg);
        dz[3 * units_ + u] = d_og * sigmoid_grad_from_value(og);
      }

      // Parameter gradients and input/hidden gradients from dz.
      for (std::size_t j = 0; j < g4; ++j) b_grad_(0, j) += dz[j];
      for (std::size_t k = 0; k < in_; ++k) {
        const double xv = input_cache_(bi, t, k);
        double* row = wxg + k * g4;
        const double* wrow = wxp + k * g4;
        double acc = 0.0;
        for (std::size_t j = 0; j < g4; ++j) {
          row[j] += xv * dz[j];
          acc += dz[j] * wrow[j];
        }
        dx(bi, t, k) = acc;
      }
      for (std::size_t k = 0; k < units_; ++k) {
        const double hv = h_cache_(bi, t, k);
        double* row = whg + k * g4;
        const double* wrow = whp + k * g4;
        double acc = 0.0;
        for (std::size_t j = 0; j < g4; ++j) {
          row[j] += hv * dz[j];
          acc += dz[j] * wrow[j];
        }
        dh_next[k] = acc;
      }
    }
  }

  std::vector<Tensor3> grads;
  grads.push_back(std::move(dx));
  return grads;
}

std::vector<Matrix*> LSTM::parameters() { return {&wx_, &wh_, &b_}; }
std::vector<Matrix*> LSTM::gradients() {
  return {&wx_grad_, &wh_grad_, &b_grad_};
}

std::string LSTM::name() const {
  return "LSTM(" + std::to_string(units_) + ")";
}

}  // namespace geonas::nn
