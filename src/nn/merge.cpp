#include "nn/merge.hpp"

#include <stdexcept>

#include "nn/activations.hpp"

namespace geonas::nn {

AddMerge::AddMerge(std::size_t arity, bool relu_after)
    : arity_(arity), relu_(relu_after) {
  if (arity_ < 1) throw std::invalid_argument("AddMerge: arity must be >= 1");
}

Tensor3 AddMerge::forward(std::span<const Tensor3* const> inputs,
                          bool training) {
  if (inputs.size() != arity_) {
    throw std::invalid_argument("AddMerge: wrong number of inputs");
  }
  Tensor3 out = *inputs[0];
  for (std::size_t i = 1; i < inputs.size(); ++i) {
    const Tensor3& in = *inputs[i];
    if (in.dim0() != out.dim0() || in.dim1() != out.dim1() ||
        in.dim2() != out.dim2()) {
      throw std::invalid_argument("AddMerge: input shape mismatch");
    }
    auto of = out.flat();
    const auto inf = in.flat();
    for (std::size_t k = 0; k < of.size(); ++k) of[k] += inf[k];
  }
  if (training && relu_) sum_cache_ = out;
  if (relu_) apply_activation(Activation::kReLU, out.flat());
  return out;
}

std::vector<Tensor3> AddMerge::backward(const Tensor3& grad_output) {
  Tensor3 dsum = grad_output;
  if (relu_) {
    auto df = dsum.flat();
    const auto sf = sum_cache_.flat();
    if (df.size() != sf.size()) {
      throw std::invalid_argument("AddMerge::backward: shape mismatch");
    }
    activation_grad_mul(Activation::kReLU, df, sf, sf);
  }
  // d(sum)/d(input_i) = 1 for every input.
  std::vector<Tensor3> grads(arity_, dsum);
  return grads;
}

std::string AddMerge::name() const {
  return std::string("Add[") + std::to_string(arity_) + "]" +
         (relu_ ? "+ReLU" : "");
}

Tensor3 Identity::forward(std::span<const Tensor3* const> inputs,
                          bool /*training*/) {
  return single_input(inputs, "Identity");
}

std::vector<Tensor3> Identity::backward(const Tensor3& grad_output) {
  return {grad_output};
}

}  // namespace geonas::nn
