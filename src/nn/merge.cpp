#include "nn/merge.hpp"

#include <algorithm>
#include <stdexcept>

#include "nn/activations.hpp"

namespace geonas::nn {

AddMerge::AddMerge(std::size_t arity, bool relu_after)
    : arity_(arity), relu_(relu_after) {
  if (arity_ < 1) throw std::invalid_argument("AddMerge: arity must be >= 1");
}

void AddMerge::bind_workspace(tensor::Arena& arena, std::size_t batch,
                              std::size_t steps, std::size_t in_features) {
  if (relu_) sum_cache_.bind(arena, batch * steps, in_features);
  ws_batch_ = batch;
  ws_steps_ = steps;
  ws_features_ = in_features;
}

void AddMerge::forward_into(std::span<const Tensor3* const> inputs,
                            Tensor3& out, bool training) {
  if (inputs.size() != arity_ || inputs[0] == nullptr) {
    throw std::invalid_argument("AddMerge: wrong number of inputs");
  }
  const Tensor3& first = *inputs[0];
  if (first.dim0() != ws_batch_ || first.dim1() != ws_steps_ ||
      first.dim2() != ws_features_) {
    bind_workspace(self_arena(), first.dim0(), first.dim1(), first.dim2());
  }
  std::copy(first.flat().begin(), first.flat().end(), out.flat().begin());
  for (std::size_t i = 1; i < inputs.size(); ++i) {
    const Tensor3& in = *inputs[i];
    if (in.dim0() != first.dim0() || in.dim1() != first.dim1() ||
        in.dim2() != first.dim2()) {
      throw std::invalid_argument("AddMerge: input shape mismatch");
    }
    auto of = out.flat();
    const auto inf = in.flat();
    for (std::size_t k = 0; k < of.size(); ++k) of[k] += inf[k];
  }
  if (relu_) {
    if (training) {
      std::copy(out.flat().begin(), out.flat().end(),
                sum_cache_.flat().begin());
    }
    apply_activation(Activation::kReLU, out.flat());
  }
}

void AddMerge::backward_into(const Tensor3& grad_output,
                             std::span<Tensor3* const> input_grads) {
  if (input_grads.size() != arity_ || input_grads[0] == nullptr) {
    throw std::invalid_argument("AddMerge::backward: wrong gradient count");
  }
  // d(sum)/d(input_i) = 1 for every input: compute the (possibly ReLU-
  // masked) sum gradient into the first slot, then copy to the others.
  Tensor3& dsum = *input_grads[0];
  if (dsum.size() != grad_output.size()) {
    throw std::invalid_argument("AddMerge::backward: shape mismatch");
  }
  std::copy(grad_output.flat().begin(), grad_output.flat().end(),
            dsum.flat().begin());
  if (relu_) {
    auto df = dsum.flat();
    const auto sf = sum_cache_.flat();
    if (df.size() != sf.size()) {
      throw std::invalid_argument("AddMerge::backward: shape mismatch");
    }
    activation_grad_mul(Activation::kReLU, df, sf, sf);
  }
  for (std::size_t i = 1; i < input_grads.size(); ++i) {
    if (input_grads[i] == nullptr) {
      throw std::invalid_argument("AddMerge::backward: null gradient slot");
    }
    std::copy(dsum.flat().begin(), dsum.flat().end(),
              input_grads[i]->flat().begin());
  }
}

std::string AddMerge::name() const {
  return std::string("Add[") + std::to_string(arity_) + "]" +
         (relu_ ? "+ReLU" : "");
}

void Identity::forward_into(std::span<const Tensor3* const> inputs,
                            Tensor3& out, bool /*training*/) {
  const Tensor3& x = single_input(inputs, "Identity");
  std::copy(x.flat().begin(), x.flat().end(), out.flat().begin());
}

void Identity::backward_into(const Tensor3& grad_output,
                             std::span<Tensor3* const> input_grads) {
  if (input_grads.size() != 1 || input_grads[0] == nullptr ||
      input_grads[0]->size() != grad_output.size()) {
    throw std::invalid_argument("Identity::backward: wrong gradient count");
  }
  std::copy(grad_output.flat().begin(), grad_output.flat().end(),
            input_grads[0]->flat().begin());
}

}  // namespace geonas::nn
