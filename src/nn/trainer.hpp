// Mini-batch trainer for GraphNetworks.
//
// Reproduces the paper's training protocol (§IV): MSE loss, Adam with
// learning rate 1e-3, batch size 64, shuffled mini-batches, validation R^2
// tracked per epoch. The same trainer is used for 20-epoch NAS evaluations
// and 100-epoch post-training.
//
// Memory model: fit() assembles mini-batches from an ExampleSource into
// persistent gather buffers and drives the graph through
// forward_ref/backward_ref, so the steady-state step performs zero heap
// allocation (see tests/alloc_audit_test.cpp). The classic tensor-pair
// overload adapts through TensorPairSource.
#pragma once

#include <cstdint>
#include <vector>

#include "nn/example_source.hpp"
#include "nn/graph.hpp"

namespace geonas::nn {

struct TrainConfig {
  std::size_t epochs = 20;       // paper: 20 during search, 100 posttraining
  std::size_t batch_size = 64;   // paper: 64
  double learning_rate = 1e-3;   // paper: 0.001 (Adam)
  double grad_clip_norm = 10.0;  // stabilizes deep skip-heavy stacks
  /// Decoupled AdamW weight decay (counters memorization of the training
  /// trajectory on small windowed datasets); 0 disables.
  double weight_decay = 0.0;
  /// Learning rate decays by this factor at 1/2 and 3/4 of the epoch
  /// budget (1.0 = constant LR).
  double lr_step_decay = 1.0;
  std::uint64_t seed = 42;       // shuffling seed
  bool shuffle = true;
  /// Threads for the kernel-layer parallel_for (blocked GEMM splits).
  /// 0 leaves the current process-wide setting untouched; any other
  /// value pins hpc::set_kernel_threads before the first epoch.
  std::size_t kernel_threads = 0;
};

struct TrainHistory {
  std::vector<double> train_loss;  // mean MSE per epoch
  std::vector<double> val_loss;    // MSE on the validation set per epoch
  std::vector<double> val_r2;      // R^2 on the validation set per epoch

  /// Best (highest) validation R^2 seen; -inf when no validation data.
  [[nodiscard]] double best_val_r2() const;
};

class Trainer {
 public:
  explicit Trainer(TrainConfig config = {}) : cfg_(config) {}

  /// Trains the network in place on examples gathered from `train`;
  /// `val` may be null (or empty) to skip validation.
  TrainHistory fit(GraphNetwork& net, const ExampleSource& train,
                   const ExampleSource* val) const;

  /// Trains the network in place. x/y are [N, T, F] example tensors;
  /// x_val/y_val may be empty (dim0 == 0) to skip validation.
  TrainHistory fit(GraphNetwork& net, const Tensor3& x, const Tensor3& y,
                   const Tensor3& x_val, const Tensor3& y_val) const;

  /// Batched inference over all examples.
  static Tensor3 predict(GraphNetwork& net, const Tensor3& x,
                         std::size_t batch_size = 256);

  [[nodiscard]] const TrainConfig& config() const noexcept { return cfg_; }

 private:
  TrainConfig cfg_;
};

/// Batched inference into a caller-owned output tensor, gathering inputs
/// through `x_scratch` (both buffers are resized as needed and reused —
/// no allocation once warm).
void predict_into(GraphNetwork& net, const ExampleSource& src, Tensor3& out,
                  Tensor3& x_scratch, std::size_t batch_size = 256);

/// Gathers the examples at `indices` into a contiguous batch tensor.
[[nodiscard]] Tensor3 gather_examples(const Tensor3& data,
                                      std::span<const std::size_t> indices);

/// Epochs at which the step LR decay fires: 1/2 and 3/4 of the budget,
/// deduplicated (they coincide for epochs < 4) and never epoch 0 (a decay
/// before any full-rate training would silently shrink the whole run).
[[nodiscard]] std::vector<std::size_t> lr_decay_epochs(std::size_t epochs);

}  // namespace geonas::nn
