#include "nn/dropout.hpp"

#include <stdexcept>

namespace geonas::nn {

Dropout::Dropout(double rate) : rate_(rate), rng_(0xD120) {
  if (rate_ < 0.0 || rate_ >= 1.0) {
    throw std::invalid_argument("Dropout: rate must be in [0, 1)");
  }
}

Tensor3 Dropout::forward(std::span<const Tensor3* const> inputs,
                         bool training) {
  const Tensor3& x = single_input(inputs, "Dropout");
  if (!training || rate_ == 0.0) return x;

  Tensor3 out = x;
  mask_ = Tensor3(x.dim0(), x.dim1(), x.dim2());
  const double keep_scale = 1.0 / (1.0 - rate_);
  auto mf = mask_.flat();
  auto of = out.flat();
  for (std::size_t i = 0; i < of.size(); ++i) {
    mf[i] = rng_.bernoulli(rate_) ? 0.0 : keep_scale;
    of[i] *= mf[i];
  }
  return out;
}

std::vector<Tensor3> Dropout::backward(const Tensor3& grad_output) {
  if (rate_ == 0.0) return {grad_output};
  if (grad_output.size() != mask_.size()) {
    throw std::invalid_argument("Dropout::backward: shape mismatch");
  }
  Tensor3 dx = grad_output;
  auto df = dx.flat();
  const auto mf = mask_.flat();
  for (std::size_t i = 0; i < df.size(); ++i) df[i] *= mf[i];
  return {std::move(dx)};
}

std::string Dropout::name() const {
  return "Dropout(" + std::to_string(rate_).substr(0, 4) + ")";
}

}  // namespace geonas::nn
