#include "nn/dropout.hpp"

#include <algorithm>
#include <stdexcept>

namespace geonas::nn {

Dropout::Dropout(double rate) : rate_(rate), rng_(0xD120) {
  if (rate_ < 0.0 || rate_ >= 1.0) {
    throw std::invalid_argument("Dropout: rate must be in [0, 1)");
  }
}

void Dropout::bind_workspace(tensor::Arena& arena, std::size_t batch,
                             std::size_t steps, std::size_t in_features) {
  if (rate_ > 0.0) mask_.bind(arena, batch * steps, in_features);
  ws_batch_ = batch;
  ws_steps_ = steps;
  ws_features_ = in_features;
}

void Dropout::forward_into(std::span<const Tensor3* const> inputs,
                           Tensor3& out, bool training) {
  const Tensor3& x = single_input(inputs, "Dropout");
  if (!training || rate_ == 0.0) {
    std::copy(x.flat().begin(), x.flat().end(), out.flat().begin());
    return;
  }
  if (x.dim0() != ws_batch_ || x.dim1() != ws_steps_ ||
      x.dim2() != ws_features_) {
    bind_workspace(self_arena(), x.dim0(), x.dim1(), x.dim2());
  }
  const double keep_scale = 1.0 / (1.0 - rate_);
  auto mf = mask_.flat();
  const auto xf = x.flat();
  auto of = out.flat();
  for (std::size_t i = 0; i < of.size(); ++i) {
    mf[i] = rng_.bernoulli(rate_) ? 0.0 : keep_scale;
    of[i] = xf[i] * mf[i];
  }
}

void Dropout::backward_into(const Tensor3& grad_output,
                            std::span<Tensor3* const> input_grads) {
  if (input_grads.size() != 1 || input_grads[0] == nullptr ||
      input_grads[0]->size() != grad_output.size()) {
    throw std::invalid_argument("Dropout::backward: wrong gradient count");
  }
  Tensor3& dx = *input_grads[0];
  if (rate_ == 0.0) {
    std::copy(grad_output.flat().begin(), grad_output.flat().end(),
              dx.flat().begin());
    return;
  }
  if (grad_output.size() != mask_.size()) {
    throw std::invalid_argument("Dropout::backward: shape mismatch");
  }
  auto df = dx.flat();
  const auto gf = grad_output.flat();
  const auto mf = mask_.flat();
  for (std::size_t i = 0; i < df.size(); ++i) df[i] = gf[i] * mf[i];
}

std::string Dropout::name() const {
  return "Dropout(" + std::to_string(rate_).substr(0, 4) + ")";
}

}  // namespace geonas::nn
