// Time-distributed dense (fully connected) layer.
//
// Applies y = act(x W + b) independently at every timestep: an input
// [B, T, F] is treated as a (B*T) x F matrix. This is exactly Keras's
// TimeDistributed(Dense(...)) semantics, which the paper uses to project
// skip-connection tensors to the incumbent layer's width (§III-A; the
// projection dense layers carry no activation).
//
// The training forward caches the input by POINTER (the hot-path input
// contract of layer.hpp) and the pre-/post-activation values in arena
// workspaces, so a bound Dense allocates nothing per step.
#pragma once

#include "nn/activations.hpp"
#include "nn/layer.hpp"

namespace geonas::nn {

class Dense final : public Layer {
 public:
  Dense(std::size_t in_features, std::size_t out_features,
        Activation activation = Activation::kIdentity, bool use_bias = true);

  void bind_workspace(tensor::Arena& arena, std::size_t batch,
                      std::size_t steps, std::size_t in_features) override;
  void forward_into(std::span<const Tensor3* const> inputs, Tensor3& out,
                    bool training) override;
  void backward_into(const Tensor3& grad_output,
                     std::span<Tensor3* const> input_grads) override;
  void init_params(Rng& rng) override;
  void repack_weights() override;
  std::vector<Matrix*> parameters() override;
  std::vector<Matrix*> gradients() override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::size_t output_features(
      std::size_t /*in_features*/) const override {
    return out_;
  }

  [[nodiscard]] std::size_t in_features() const noexcept { return in_; }
  [[nodiscard]] std::size_t out_features() const noexcept { return out_; }
  [[nodiscard]] Activation activation() const noexcept { return activation_; }
  [[nodiscard]] bool use_bias() const noexcept { return use_bias_; }

 private:
  std::size_t in_;
  std::size_t out_;
  Activation activation_;
  bool use_bias_;

  Matrix w_;       // in x out
  Matrix b_;       // 1 x out
  Matrix w_grad_;
  Matrix b_grad_;

  // Pack-once weight panels (see lstm.hpp): forward x*W, backward dZ*W^T.
  tensor::PackedPanels w_pack_;    // op = W
  tensor::PackedPanels w_t_pack_;  // op = W^T

  // Training-mode caches: the input stays with its owner (pointer), the
  // pre-/post-activation copies live in the bound arena. For an identity
  // activation no activation caches are needed — dz is grad_output.
  const Tensor3* input_cache_ = nullptr;
  tensor::ArenaMatrix preact_cache_;  // [B*T, out]
  tensor::ArenaMatrix output_cache_;  // [B*T, out]
  tensor::ArenaMatrix dz_;            // [B*T, out]
  std::size_t ws_batch_ = 0;
  std::size_t ws_steps_ = 0;
};

}  // namespace geonas::nn
