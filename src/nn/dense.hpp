// Time-distributed dense (fully connected) layer.
//
// Applies y = act(x W + b) independently at every timestep: an input
// [B, T, F] is treated as a (B*T) x F matrix. This is exactly Keras's
// TimeDistributed(Dense(...)) semantics, which the paper uses to project
// skip-connection tensors to the incumbent layer's width (§III-A; the
// projection dense layers carry no activation).
#pragma once

#include "nn/activations.hpp"
#include "nn/layer.hpp"

namespace geonas::nn {

class Dense final : public Layer {
 public:
  Dense(std::size_t in_features, std::size_t out_features,
        Activation activation = Activation::kIdentity, bool use_bias = true);

  Tensor3 forward(std::span<const Tensor3* const> inputs,
                  bool training) override;
  std::vector<Tensor3> backward(const Tensor3& grad_output) override;
  void init_params(Rng& rng) override;
  std::vector<Matrix*> parameters() override;
  std::vector<Matrix*> gradients() override;
  [[nodiscard]] std::string name() const override;

  [[nodiscard]] std::size_t in_features() const noexcept { return in_; }
  [[nodiscard]] std::size_t out_features() const noexcept { return out_; }

 private:
  std::size_t in_;
  std::size_t out_;
  Activation activation_;
  bool use_bias_;

  Matrix w_;       // in x out
  Matrix b_;       // 1 x out
  Matrix w_grad_;
  Matrix b_grad_;

  // Forward cache (training mode).
  Tensor3 input_cache_;
  Tensor3 preact_cache_;
  Tensor3 output_cache_;
};

}  // namespace geonas::nn
