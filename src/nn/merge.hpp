// Merge and pass-through layers for the skip-connected search space.
//
// AddMerge implements the paper's skip-connection semantics: the incumbent
// tensor and all projected skip tensors are summed, then "after each add
// operation, the ReLU activation function [is] applied to the tensor"
// (§IV). Identity is the zero-parameter passthrough used when a variable
// LSTM node selects the Identity operation.
#pragma once

#include "nn/layer.hpp"

namespace geonas::nn {

/// Sums N same-shaped inputs, optionally applying ReLU to the result.
class AddMerge final : public Layer {
 public:
  explicit AddMerge(std::size_t arity, bool relu_after = true);

  [[nodiscard]] std::size_t arity() const override { return arity_; }
  [[nodiscard]] bool relu_after() const noexcept { return relu_; }
  void bind_workspace(tensor::Arena& arena, std::size_t batch,
                      std::size_t steps, std::size_t in_features) override;
  void forward_into(std::span<const Tensor3* const> inputs, Tensor3& out,
                    bool training) override;
  void backward_into(const Tensor3& grad_output,
                     std::span<Tensor3* const> input_grads) override;
  [[nodiscard]] std::string name() const override;

 private:
  std::size_t arity_;
  bool relu_;
  // Pre-ReLU sum, for the backward mask; carved from the bound arena.
  tensor::ArenaMatrix sum_cache_;  // [B*T, features]
  std::size_t ws_batch_ = 0;
  std::size_t ws_steps_ = 0;
  std::size_t ws_features_ = 0;
};

/// Shape-preserving passthrough.
class Identity final : public Layer {
 public:
  Identity() = default;
  void forward_into(std::span<const Tensor3* const> inputs, Tensor3& out,
                    bool training) override;
  void backward_into(const Tensor3& grad_output,
                     std::span<Tensor3* const> input_grads) override;
  [[nodiscard]] std::string name() const override { return "Identity"; }
};

}  // namespace geonas::nn
