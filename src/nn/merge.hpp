// Merge and pass-through layers for the skip-connected search space.
//
// AddMerge implements the paper's skip-connection semantics: the incumbent
// tensor and all projected skip tensors are summed, then "after each add
// operation, the ReLU activation function [is] applied to the tensor"
// (§IV). Identity is the zero-parameter passthrough used when a variable
// LSTM node selects the Identity operation.
#pragma once

#include "nn/layer.hpp"

namespace geonas::nn {

/// Sums N same-shaped inputs, optionally applying ReLU to the result.
class AddMerge final : public Layer {
 public:
  explicit AddMerge(std::size_t arity, bool relu_after = true);

  [[nodiscard]] std::size_t arity() const override { return arity_; }
  Tensor3 forward(std::span<const Tensor3* const> inputs,
                  bool training) override;
  std::vector<Tensor3> backward(const Tensor3& grad_output) override;
  [[nodiscard]] std::string name() const override;

 private:
  std::size_t arity_;
  bool relu_;
  Tensor3 sum_cache_;  // pre-ReLU sum, for the backward mask
};

/// Shape-preserving passthrough.
class Identity final : public Layer {
 public:
  Identity() = default;
  Tensor3 forward(std::span<const Tensor3* const> inputs,
                  bool training) override;
  std::vector<Tensor3> backward(const Tensor3& grad_output) override;
  [[nodiscard]] std::string name() const override { return "Identity"; }
};

}  // namespace geonas::nn
