// Weight serialization for GraphNetworks.
//
// A plain text format: header with parameter count, then per-parameter
// shape + row-major values in full precision. Structure is not stored —
// loading requires a network with an identical parameter list, which the
// searchspace builder regenerates deterministically from an architecture
// encoding.
#pragma once

#include <iosfwd>
#include <string>

#include "nn/graph.hpp"

namespace geonas::nn {

void save_weights(GraphNetwork& net, std::ostream& os);
void load_weights(GraphNetwork& net, std::istream& is);

/// File-path conveniences; throw std::runtime_error on I/O failure.
void save_weights_file(GraphNetwork& net, const std::string& path);
void load_weights_file(GraphNetwork& net, const std::string& path);

}  // namespace geonas::nn
