// Weight serialization for GraphNetworks.
//
// Two formats share one loading entry point:
//
//  * text v1 — header with parameter count, then per-parameter shape +
//    row-major values in full decimal precision. Human-greppable, but
//    structurally unable to round-trip non-finite values ("nan"/"inf"
//    tokens are not valid operator>> input), so saving a diverged network
//    is refused with a pointer at the binary format, and loading a legacy
//    v1 file that contains them fails with an error naming the parameter.
//
//  * binary v2 — a geonas::io container (magic "GEONASW2", version,
//    length-prefixed shapes, raw IEEE-754 payload, CRC-32 trailer).
//    Non-finite values round-trip bit-exactly; truncation and corruption
//    are detected with byte-offset diagnostics.
//
// Structure is not stored in either format — loading requires a network
// with an identical parameter list, which the searchspace builder
// regenerates deterministically from an architecture encoding.
// load_weights_file() sniffs the leading magic and dispatches.
#pragma once

#include <iosfwd>
#include <string>

#include "nn/graph.hpp"

namespace geonas::nn {

/// Text v1. Throws std::runtime_error when any parameter is non-finite
/// (the format cannot represent it; use save_weights_binary).
void save_weights(GraphNetwork& net, std::ostream& os);
void load_weights(GraphNetwork& net, std::istream& is);

/// Binary v2 (io::BinaryWriter container). Round-trips NaN/inf bit-exactly.
void save_weights_binary(GraphNetwork& net, std::ostream& os);
void load_weights_binary(GraphNetwork& net, std::istream& is);

/// File-path conveniences; throw std::runtime_error on I/O failure.
/// save_weights_file writes binary v2 by default (`text_v1` selects the
/// legacy format); load_weights_file auto-detects the format from the
/// leading magic bytes.
void save_weights_file(GraphNetwork& net, const std::string& path,
                       bool text_v1 = false);
void load_weights_file(GraphNetwork& net, const std::string& path);

}  // namespace geonas::nn
