#include "nn/serialize.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <istream>
#include <ostream>
#include <stdexcept>

#include "io/atomic_file.hpp"
#include "io/binary.hpp"

namespace geonas::nn {

namespace {
constexpr const char* kMagic = "geonas-weights-v1";
constexpr const char* kBinaryMagic = "GEONASW2";
constexpr std::uint32_t kBinaryVersion = 2;
}  // namespace

void save_weights(GraphNetwork& net, std::ostream& os) {
  const auto params = net.parameters();
  for (std::size_t p = 0; p < params.size(); ++p) {
    for (double v : params[p]->flat()) {
      if (!std::isfinite(v)) {
        throw std::runtime_error(
            "save_weights: parameter " + std::to_string(p) +
            " holds a non-finite value; the text v1 format cannot "
            "round-trip it — use save_weights_binary");
      }
    }
  }
  os << kMagic << "\n" << params.size() << "\n";
  os << std::setprecision(17);
  for (const Matrix* p : params) {
    os << p->rows() << " " << p->cols() << "\n";
    const auto flat = p->flat();
    for (std::size_t i = 0; i < flat.size(); ++i) {
      os << flat[i] << (i + 1 == flat.size() ? "\n" : " ");
    }
    if (flat.empty()) os << "\n";
  }
  if (!os) throw std::runtime_error("save_weights: stream write failure");
}

void load_weights(GraphNetwork& net, std::istream& is) {
  std::string magic;
  is >> magic;
  if (!is || magic != kMagic) {
    throw std::runtime_error("load_weights: bad magic header '" + magic + "'");
  }
  std::size_t count = 0;
  if (!(is >> count)) {
    throw std::runtime_error("load_weights: truncated header");
  }
  auto params = net.parameters();
  if (count != params.size()) {
    throw std::runtime_error("load_weights: parameter count mismatch (file " +
                             std::to_string(count) + ", network " +
                             std::to_string(params.size()) + ")");
  }
  for (std::size_t p = 0; p < params.size(); ++p) {
    std::size_t rows = 0, cols = 0;
    if (!(is >> rows >> cols)) {
      throw std::runtime_error("load_weights: truncated shape of parameter " +
                               std::to_string(p));
    }
    if (rows != params[p]->rows() || cols != params[p]->cols()) {
      throw std::runtime_error("load_weights: shape mismatch at parameter " +
                               std::to_string(p));
    }
    for (double& v : params[p]->flat()) {
      // Read each value as a token first: operator>> rejects the
      // "nan"/"inf" tokens legacy v1 files may contain, and we owe the
      // caller a diagnostic that names the culprit instead of a bare
      // stream failure.
      std::string token;
      if (!(is >> token)) {
        throw std::runtime_error(
            "load_weights: truncated values of parameter " +
            std::to_string(p));
      }
      char* end = nullptr;
      v = std::strtod(token.c_str(), &end);
      if (end == token.c_str() || *end != '\0') {
        throw std::runtime_error("load_weights: unparseable value '" + token +
                                 "' in parameter " + std::to_string(p));
      }
      if (!std::isfinite(v)) {
        throw std::runtime_error(
            "load_weights: non-finite value '" + token + "' in parameter " +
            std::to_string(p) +
            " — text v1 cannot round-trip diverged weights; re-save with "
            "save_weights_binary");
      }
    }
  }
}

void save_weights_binary(GraphNetwork& net, std::ostream& os) {
  const auto params = net.parameters();
  io::BinaryWriter writer(os, kBinaryMagic, kBinaryVersion);
  writer.u64(params.size());
  for (const Matrix* p : params) {
    writer.u64(p->rows());
    writer.u64(p->cols());
    const auto flat = p->flat();
    writer.f64_array(flat.data(), flat.size());
  }
  writer.finish();
}

void load_weights_binary(GraphNetwork& net, std::istream& is) {
  auto params = net.parameters();
  io::BinaryReader reader(is, kBinaryMagic, kBinaryVersion, kBinaryVersion);
  const std::uint64_t count = reader.u64("parameter count");
  if (count != params.size()) {
    throw std::runtime_error(
        "load_weights_binary: parameter count mismatch (file " +
        std::to_string(count) + ", network " +
        std::to_string(params.size()) + ")");
  }
  for (std::size_t p = 0; p < params.size(); ++p) {
    const std::uint64_t rows = reader.u64("parameter rows");
    const std::uint64_t cols = reader.u64("parameter cols");
    if (rows != params[p]->rows() || cols != params[p]->cols()) {
      throw std::runtime_error(
          "load_weights_binary: shape mismatch at parameter " +
          std::to_string(p));
    }
    const auto values = reader.f64_array("parameter values");
    auto flat = params[p]->flat();
    if (values.size() != flat.size()) {
      throw std::runtime_error(
          "load_weights_binary: value count mismatch at parameter " +
          std::to_string(p));
    }
    std::copy(values.begin(), values.end(), flat.begin());
  }
  reader.finish();
}

void save_weights_file(GraphNetwork& net, const std::string& path,
                       bool text_v1) {
  // Atomic publish (.tmp + rename) so a crash mid-save never leaves a
  // truncated weight file where a loader (or a serve stream) will read
  // it; failures are diagnosed with the full path and operation.
  io::atomic_write_file(
      path,
      [&net, text_v1](std::ostream& os) {
        if (text_v1) {
          save_weights(net, os);
        } else {
          save_weights_binary(net, os);
        }
      },
      "save_weights_file");
}

void load_weights_file(GraphNetwork& net, const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("load_weights_file: cannot open " + path);
  // Sniff the leading magic to dispatch between the formats.
  char head[8] = {};
  is.read(head, 8);
  const bool binary = is.gcount() == 8 && std::string_view(head, 8) ==
                                              std::string_view(kBinaryMagic);
  is.clear();
  is.seekg(0);
  if (binary) {
    load_weights_binary(net, is);
  } else {
    load_weights(net, is);
  }
}

}  // namespace geonas::nn
