#include "nn/serialize.hpp"

#include <fstream>
#include <iomanip>
#include <istream>
#include <ostream>
#include <stdexcept>

namespace geonas::nn {

namespace {
constexpr const char* kMagic = "geonas-weights-v1";
}

void save_weights(GraphNetwork& net, std::ostream& os) {
  const auto params = net.parameters();
  os << kMagic << "\n" << params.size() << "\n";
  os << std::setprecision(17);
  for (const Matrix* p : params) {
    os << p->rows() << " " << p->cols() << "\n";
    const auto flat = p->flat();
    for (std::size_t i = 0; i < flat.size(); ++i) {
      os << flat[i] << (i + 1 == flat.size() ? "\n" : " ");
    }
    if (flat.empty()) os << "\n";
  }
  if (!os) throw std::runtime_error("save_weights: stream write failure");
}

void load_weights(GraphNetwork& net, std::istream& is) {
  std::string magic;
  is >> magic;
  if (magic != kMagic) {
    throw std::runtime_error("load_weights: bad magic header '" + magic + "'");
  }
  std::size_t count = 0;
  is >> count;
  auto params = net.parameters();
  if (count != params.size()) {
    throw std::runtime_error("load_weights: parameter count mismatch (file " +
                             std::to_string(count) + ", network " +
                             std::to_string(params.size()) + ")");
  }
  for (Matrix* p : params) {
    std::size_t rows = 0, cols = 0;
    is >> rows >> cols;
    if (rows != p->rows() || cols != p->cols()) {
      throw std::runtime_error("load_weights: parameter shape mismatch");
    }
    for (double& v : p->flat()) is >> v;
  }
  if (!is) throw std::runtime_error("load_weights: stream read failure");
}

void save_weights_file(GraphNetwork& net, const std::string& path) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("save_weights_file: cannot open " + path);
  save_weights(net, os);
}

void load_weights_file(GraphNetwork& net, const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("load_weights_file: cannot open " + path);
  load_weights(net, is);
}

}  // namespace geonas::nn
