#include "nn/dense.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "tensor/blas.hpp"

namespace geonas::nn {

Dense::Dense(std::size_t in_features, std::size_t out_features,
             Activation activation, bool use_bias)
    : in_(in_features),
      out_(out_features),
      activation_(activation),
      use_bias_(use_bias),
      w_(in_features, out_features),
      b_(1, out_features),
      w_grad_(in_features, out_features),
      b_grad_(1, out_features) {
  if (in_ == 0 || out_ == 0) {
    throw std::invalid_argument("Dense: zero-sized feature dimension");
  }
}

void Dense::init_params(Rng& rng) {
  // Glorot/Xavier uniform — matches Keras's Dense default.
  const double limit = std::sqrt(6.0 / static_cast<double>(in_ + out_));
  for (double& v : w_.flat()) v = rng.uniform(-limit, limit);
  b_.fill(0.0);
}

void Dense::bind_workspace(tensor::Arena& arena, std::size_t batch,
                           std::size_t steps, std::size_t in_features) {
  if (in_features != in_) {
    throw std::invalid_argument("Dense: input feature dim " +
                                std::to_string(in_features) + " != " +
                                std::to_string(in_));
  }
  if (activation_ != Activation::kIdentity) {
    // An identity Dense backpropagates through grad_output directly; only
    // a real activation needs the pre-/post-activation caches.
    const std::size_t rows = batch * steps;
    preact_cache_.bind(arena, rows, out_);
    output_cache_.bind(arena, rows, out_);
    dz_.bind(arena, rows, out_);
  }
  ws_batch_ = batch;
  ws_steps_ = steps;
}

void Dense::forward_into(std::span<const Tensor3* const> inputs, Tensor3& out,
                         bool training) {
  const Tensor3& x = single_input(inputs, "Dense");
  const std::size_t batch = x.dim0(), steps = x.dim1();
  if (batch != ws_batch_ || steps != ws_steps_ || x.dim2() != in_) {
    bind_workspace(self_arena(), batch, steps, x.dim2());
  }
  const std::size_t rows = batch * steps;

  // Treat [B,T,F] as (B*T) x F; both tensors are contiguous row-major,
  // so the whole layer is one GEMM (against the prepacked weight panel,
  // re-validated per pass) plus a bias broadcast.
  w_pack_.ensure(w_, Trans::kNone);
  gemm_raw(Trans::kNone, rows, 1.0, x.flat().data(), in_, w_pack_, 0.0,
           out.flat().data(), out_);
  if (use_bias_) {
    const double* bias = b_.flat().data();
    double* op = out.flat().data();
    for (std::size_t r = 0; r < rows; ++r) {
      double* orow = op + r * out_;
      for (std::size_t j = 0; j < out_; ++j) orow[j] += bias[j];
    }
  }

  if (training) input_cache_ = &x;
  if (activation_ != Activation::kIdentity) {
    if (training) {
      std::copy(out.flat().begin(), out.flat().end(),
                preact_cache_.flat().begin());
    }
    // Span form dispatches tanh/sigmoid to the tensor::vmath backend.
    apply_activation(activation_, out.flat());
    if (training) {
      std::copy(out.flat().begin(), out.flat().end(),
                output_cache_.flat().begin());
    }
  }
}

void Dense::backward_into(const Tensor3& grad_output,
                          std::span<Tensor3* const> input_grads) {
  if (input_cache_ == nullptr) {
    throw std::logic_error("Dense::backward: no cached training forward");
  }
  const std::size_t batch = input_cache_->dim0();
  const std::size_t steps = input_cache_->dim1();
  if (grad_output.dim0() != batch || grad_output.dim1() != steps ||
      grad_output.dim2() != out_ || input_grads.size() != 1 ||
      input_grads[0] == nullptr) {
    throw std::invalid_argument("Dense::backward: gradient shape mismatch");
  }
  const std::size_t rows = batch * steps;

  // Gradient through the activation; an identity activation passes
  // grad_output straight into the GEMMs without a copy.
  const double* dz = grad_output.flat().data();
  if (activation_ != Activation::kIdentity) {
    std::copy(grad_output.flat().begin(), grad_output.flat().end(),
              dz_.flat().begin());
    activation_grad_mul(activation_, dz_.flat(), preact_cache_.flat(),
                        output_cache_.flat());
    dz = dz_.flat().data();
  }

  // dW += X^T dZ and dX = dZ W^T as whole-batch slab GEMMs (the dX side
  // consumes the prepacked transposed panel).
  Tensor3& dx = *input_grads[0];
  w_t_pack_.ensure(w_, Trans::kTranspose);
  gemm_raw(Trans::kTranspose, Trans::kNone, in_, out_, rows, 1.0,
           input_cache_->flat().data(), in_, dz, out_, 1.0,
           w_grad_.flat().data(), out_);
  gemm_raw(Trans::kNone, rows, 1.0, dz, out_, w_t_pack_, 0.0,
           dx.flat().data(), in_);
  if (use_bias_) {
    double* bg = b_grad_.flat().data();
    for (std::size_t r = 0; r < rows; ++r) {
      const double* dzrow = dz + r * out_;
      for (std::size_t j = 0; j < out_; ++j) bg[j] += dzrow[j];
    }
  }
}

void Dense::repack_weights() {
  w_pack_.ensure(w_, Trans::kNone);
  w_t_pack_.ensure(w_, Trans::kTranspose);
}

std::vector<Matrix*> Dense::parameters() {
  if (use_bias_) return {&w_, &b_};
  return {&w_};
}

std::vector<Matrix*> Dense::gradients() {
  if (use_bias_) return {&w_grad_, &b_grad_};
  return {&w_grad_};
}

std::string Dense::name() const {
  std::string n = "Dense(" + std::to_string(out_) + ")";
  if (activation_ != Activation::kIdentity) {
    n += std::string("[") + activation_name(activation_) + "]";
  }
  return n;
}

}  // namespace geonas::nn
