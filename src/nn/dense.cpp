#include "nn/dense.hpp"

#include <cmath>
#include <stdexcept>

#include "tensor/blas.hpp"

namespace geonas::nn {

Dense::Dense(std::size_t in_features, std::size_t out_features,
             Activation activation, bool use_bias)
    : in_(in_features),
      out_(out_features),
      activation_(activation),
      use_bias_(use_bias),
      w_(in_features, out_features),
      b_(1, out_features),
      w_grad_(in_features, out_features),
      b_grad_(1, out_features) {
  if (in_ == 0 || out_ == 0) {
    throw std::invalid_argument("Dense: zero-sized feature dimension");
  }
}

void Dense::init_params(Rng& rng) {
  // Glorot/Xavier uniform — matches Keras's Dense default.
  const double limit = std::sqrt(6.0 / static_cast<double>(in_ + out_));
  for (double& v : w_.flat()) v = rng.uniform(-limit, limit);
  b_.fill(0.0);
}

Tensor3 Dense::forward(std::span<const Tensor3* const> inputs, bool training) {
  const Tensor3& x = single_input(inputs, "Dense");
  if (x.dim2() != in_) {
    throw std::invalid_argument("Dense: input feature dim " +
                                std::to_string(x.dim2()) + " != " +
                                std::to_string(in_));
  }
  const std::size_t batch = x.dim0(), steps = x.dim1();
  const std::size_t rows = batch * steps;

  Tensor3 out(batch, steps, out_);
  // Treat [B,T,F] as (B*T) x F; both tensors are contiguous row-major.
  const double* xp = x.flat().data();
  double* op = out.flat().data();
  const double* wp = w_.flat().data();
  for (std::size_t r = 0; r < rows; ++r) {
    const double* xrow = xp + r * in_;
    double* orow = op + r * out_;
    for (std::size_t j = 0; j < out_; ++j) orow[j] = use_bias_ ? b_(0, j) : 0.0;
    for (std::size_t k = 0; k < in_; ++k) {
      const double xv = xrow[k];
      if (xv == 0.0) continue;
      const double* wrow = wp + k * out_;
      for (std::size_t j = 0; j < out_; ++j) orow[j] += xv * wrow[j];
    }
  }

  if (training) {
    input_cache_ = x;
    preact_cache_ = out;
  }
  if (activation_ != Activation::kIdentity) {
    for (double& v : out.flat()) v = apply_activation(activation_, v);
  }
  if (training) output_cache_ = out;
  return out;
}

std::vector<Tensor3> Dense::backward(const Tensor3& grad_output) {
  const std::size_t batch = input_cache_.dim0(), steps = input_cache_.dim1();
  if (grad_output.dim0() != batch || grad_output.dim1() != steps ||
      grad_output.dim2() != out_) {
    throw std::invalid_argument("Dense::backward: gradient shape mismatch");
  }
  const std::size_t rows = batch * steps;

  // Gradient through the activation.
  Tensor3 dz = grad_output;
  if (activation_ != Activation::kIdentity) {
    auto dzf = dz.flat();
    const auto pre = preact_cache_.flat();
    const auto post = output_cache_.flat();
    for (std::size_t i = 0; i < dzf.size(); ++i) {
      dzf[i] *= activation_grad(activation_, pre[i], post[i]);
    }
  }

  Tensor3 dx(batch, steps, in_);
  const double* dzp = dz.flat().data();
  const double* xp = input_cache_.flat().data();
  double* dxp = dx.flat().data();
  double* wg = w_grad_.flat().data();
  const double* wp = w_.flat().data();
  for (std::size_t r = 0; r < rows; ++r) {
    const double* dzrow = dzp + r * out_;
    const double* xrow = xp + r * in_;
    double* dxrow = dxp + r * in_;
    // dW[k,j] += x[k] * dz[j]; dx[k] = sum_j dz[j] * W[k,j].
    for (std::size_t k = 0; k < in_; ++k) {
      const double* wrow = wp + k * out_;
      double* wgrow = wg + k * out_;
      double acc = 0.0;
      const double xv = xrow[k];
      for (std::size_t j = 0; j < out_; ++j) {
        wgrow[j] += xv * dzrow[j];
        acc += dzrow[j] * wrow[j];
      }
      dxrow[k] = acc;
    }
    if (use_bias_) {
      for (std::size_t j = 0; j < out_; ++j) b_grad_(0, j) += dzrow[j];
    }
  }

  std::vector<Tensor3> grads;
  grads.push_back(std::move(dx));
  return grads;
}

std::vector<Matrix*> Dense::parameters() {
  if (use_bias_) return {&w_, &b_};
  return {&w_};
}

std::vector<Matrix*> Dense::gradients() {
  if (use_bias_) return {&w_grad_, &b_grad_};
  return {&w_grad_};
}

std::string Dense::name() const {
  std::string n = "Dense(" + std::to_string(out_) + ")";
  if (activation_ != Activation::kIdentity) {
    n += std::string("[") + activation_name(activation_) + "]";
  }
  return n;
}

}  // namespace geonas::nn
