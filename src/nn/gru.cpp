#include "nn/gru.hpp"

#include <cmath>
#include <stdexcept>
#include <vector>

#include "nn/activations.hpp"

namespace geonas::nn {

GRU::GRU(std::size_t in_features, std::size_t units)
    : in_(in_features),
      units_(units),
      wx_(in_features, 3 * units),
      wh_(units, 3 * units),
      b_(1, 3 * units),
      wx_grad_(in_features, 3 * units),
      wh_grad_(units, 3 * units),
      b_grad_(1, 3 * units) {
  if (in_ == 0 || units_ == 0) {
    throw std::invalid_argument("GRU: zero-sized dimension");
  }
}

void GRU::init_params(Rng& rng) {
  const double limit = std::sqrt(6.0 / static_cast<double>(in_ + 3 * units_));
  for (double& v : wx_.flat()) v = rng.uniform(-limit, limit);
  const double rscale = 1.0 / std::sqrt(static_cast<double>(units_));
  for (double& v : wh_.flat()) v = rng.normal(0.0, rscale);
  b_.fill(0.0);
}

Tensor3 GRU::forward(std::span<const Tensor3* const> inputs, bool training) {
  const Tensor3& x = single_input(inputs, "GRU");
  if (x.dim2() != in_) {
    throw std::invalid_argument("GRU: input feature dim " +
                                std::to_string(x.dim2()) + " != " +
                                std::to_string(in_));
  }
  const std::size_t batch = x.dim0(), steps = x.dim1();
  const std::size_t g3 = 3 * units_;

  Tensor3 h_seq(batch, steps + 1, units_);
  Tensor3 gates(batch, steps, g3);
  Tensor3 out(batch, steps, units_);

  const double* wxp = wx_.flat().data();
  const double* whp = wh_.flat().data();
  std::vector<double> a(g3);

  for (std::size_t bi = 0; bi < batch; ++bi) {
    for (std::size_t t = 0; t < steps; ++t) {
      for (std::size_t j = 0; j < g3; ++j) a[j] = b_(0, j);
      for (std::size_t k = 0; k < in_; ++k) {
        const double xv = x(bi, t, k);
        if (xv == 0.0) continue;
        const double* wrow = wxp + k * g3;
        for (std::size_t j = 0; j < g3; ++j) a[j] += xv * wrow[j];
      }
      // The z and r gate recurrent terms use the raw previous state; the
      // candidate's recurrent term needs r, so it is added in a second
      // sweep once r is known.
      for (std::size_t k = 0; k < units_; ++k) {
        const double hv = h_seq(bi, t, k);
        if (hv == 0.0) continue;
        const double* wrow = whp + k * g3;
        for (std::size_t j = 0; j < 2 * units_; ++j) a[j] += hv * wrow[j];
      }
      for (std::size_t u = 0; u < units_; ++u) {
        gates(bi, t, u) = sigmoid(a[u]);                    // z
        gates(bi, t, units_ + u) = sigmoid(a[units_ + u]);  // r
      }
      for (std::size_t k = 0; k < units_; ++k) {
        const double rh = gates(bi, t, units_ + k) * h_seq(bi, t, k);
        if (rh == 0.0) continue;
        const double* wrow = whp + k * g3 + 2 * units_;
        for (std::size_t u = 0; u < units_; ++u) {
          a[2 * units_ + u] += rh * wrow[u];
        }
      }
      for (std::size_t u = 0; u < units_; ++u) {
        const double zg = gates(bi, t, u);
        const double hh = tanh_act(a[2 * units_ + u]);
        gates(bi, t, 2 * units_ + u) = hh;
        const double h_new = (1.0 - zg) * h_seq(bi, t, u) + zg * hh;
        h_seq(bi, t + 1, u) = h_new;
        out(bi, t, u) = h_new;
      }
    }
  }

  if (training) {
    input_cache_ = x;
    h_cache_ = std::move(h_seq);
    gates_cache_ = std::move(gates);
  }
  return out;
}

std::vector<Tensor3> GRU::backward(const Tensor3& grad_output) {
  const std::size_t batch = input_cache_.dim0(), steps = input_cache_.dim1();
  if (grad_output.dim0() != batch || grad_output.dim1() != steps ||
      grad_output.dim2() != units_) {
    throw std::invalid_argument("GRU::backward: gradient shape mismatch");
  }
  const std::size_t g3 = 3 * units_;

  Tensor3 dx(batch, steps, in_);
  const double* wxp = wx_.flat().data();
  const double* whp = wh_.flat().data();
  double* wxg = wx_grad_.flat().data();
  double* whg = wh_grad_.flat().data();

  std::vector<double> dh(units_), da(g3), dh_next(units_), drh(units_);

  for (std::size_t bi = 0; bi < batch; ++bi) {
    std::fill(dh_next.begin(), dh_next.end(), 0.0);
    for (std::size_t t = steps; t-- > 0;) {
      for (std::size_t u = 0; u < units_; ++u) {
        dh[u] = grad_output(bi, t, u) + dh_next[u];
        dh_next[u] = 0.0;
      }

      // Through h_new = (1 - z) h_prev + z hh.
      for (std::size_t u = 0; u < units_; ++u) {
        const double zg = gates_cache_(bi, t, u);
        const double rg = gates_cache_(bi, t, units_ + u);
        const double hh = gates_cache_(bi, t, 2 * units_ + u);
        const double h_prev = h_cache_(bi, t, u);

        const double dz = dh[u] * (hh - h_prev);
        const double dhh = dh[u] * zg;
        dh_next[u] += dh[u] * (1.0 - zg);

        da[u] = dz * sigmoid_grad_from_value(zg);               // daz
        da[2 * units_ + u] = dhh * tanh_grad_from_value(hh);    // dah
        // dar is filled after d(r h_prev) is known.
        (void)rg;
      }

      // d(r .* h_prev)[k] = sum_u dah[u] * Uh[k, u].
      for (std::size_t k = 0; k < units_; ++k) {
        const double* wrow = whp + k * g3 + 2 * units_;
        double acc = 0.0;
        for (std::size_t u = 0; u < units_; ++u) {
          acc += da[2 * units_ + u] * wrow[u];
        }
        drh[k] = acc;
      }
      for (std::size_t u = 0; u < units_; ++u) {
        const double rg = gates_cache_(bi, t, units_ + u);
        const double h_prev = h_cache_(bi, t, u);
        const double dr = drh[u] * h_prev;
        da[units_ + u] = dr * sigmoid_grad_from_value(rg);  // dar
        dh_next[u] += drh[u] * rg;
      }

      // Parameter and input gradients.
      for (std::size_t j = 0; j < g3; ++j) b_grad_(0, j) += da[j];
      for (std::size_t k = 0; k < in_; ++k) {
        const double xv = input_cache_(bi, t, k);
        double* row = wxg + k * g3;
        const double* wrow = wxp + k * g3;
        double acc = 0.0;
        for (std::size_t j = 0; j < g3; ++j) {
          row[j] += xv * da[j];
          acc += da[j] * wrow[j];
        }
        dx(bi, t, k) = acc;
      }
      for (std::size_t k = 0; k < units_; ++k) {
        const double h_prev = h_cache_(bi, t, k);
        const double rg = gates_cache_(bi, t, units_ + k);
        double* row = whg + k * g3;
        const double* wrow = whp + k * g3;
        double acc = 0.0;
        // z and r recurrent kernels see h_prev; the candidate kernel sees
        // r .* h_prev (its h_prev-gradient was accumulated via drh above).
        for (std::size_t j = 0; j < 2 * units_; ++j) {
          row[j] += h_prev * da[j];
          acc += da[j] * wrow[j];
        }
        for (std::size_t u = 0; u < units_; ++u) {
          row[2 * units_ + u] += rg * h_prev * da[2 * units_ + u];
        }
        dh_next[k] += acc;
      }
    }
  }

  std::vector<Tensor3> grads;
  grads.push_back(std::move(dx));
  return grads;
}

std::vector<Matrix*> GRU::parameters() { return {&wx_, &wh_, &b_}; }
std::vector<Matrix*> GRU::gradients() {
  return {&wx_grad_, &wh_grad_, &b_grad_};
}

std::string GRU::name() const { return "GRU(" + std::to_string(units_) + ")"; }

}  // namespace geonas::nn
