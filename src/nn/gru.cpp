#include "nn/gru.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "tensor/blas.hpp"
#include "tensor/vmath.hpp"

namespace geonas::nn {

GRU::GRU(std::size_t in_features, std::size_t units)
    : in_(in_features),
      units_(units),
      wx_(in_features, 3 * units),
      wh_(units, 3 * units),
      b_(1, 3 * units),
      wx_grad_(in_features, 3 * units),
      wh_grad_(units, 3 * units),
      b_grad_(1, 3 * units) {
  if (in_ == 0 || units_ == 0) {
    throw std::invalid_argument("GRU: zero-sized dimension");
  }
}

void GRU::init_params(Rng& rng) {
  const double limit = std::sqrt(6.0 / static_cast<double>(in_ + 3 * units_));
  for (double& v : wx_.flat()) v = rng.uniform(-limit, limit);
  const double rscale = 1.0 / std::sqrt(static_cast<double>(units_));
  for (double& v : wh_.flat()) v = rng.normal(0.0, rscale);
  b_.fill(0.0);
}

void GRU::bind_workspace(tensor::Arena& arena, std::size_t batch,
                         std::size_t steps, std::size_t in_features) {
  if (in_features != in_) {
    throw std::invalid_argument("GRU: input feature dim " +
                                std::to_string(in_features) + " != " +
                                std::to_string(in_));
  }
  const std::size_t g3 = 3 * units_;
  const std::size_t rows = batch * steps;
  x_tm_.bind(arena, rows, in_);
  gates_.bind(arena, rows, g3);
  h_seq_.bind(arena, (steps + 1) * batch, units_);
  rh_.bind(arena, rows, units_);
  da_.bind(arena, rows, g3);
  dh_.bind(arena, batch, units_);
  drh_.bind(arena, batch, units_);
  dx_tm_.bind(arena, rows, in_);
  ws_batch_ = batch;
  ws_steps_ = steps;
}

void GRU::forward_into(std::span<const Tensor3* const> inputs, Tensor3& out,
                       bool training) {
  const Tensor3& x = single_input(inputs, "GRU");
  const std::size_t batch = x.dim0(), steps = x.dim1();
  if (batch != ws_batch_ || steps != ws_steps_ || x.dim2() != in_) {
    bind_workspace(self_arena(), batch, steps, x.dim2());
  }
  const std::size_t g3 = 3 * units_;
  const std::size_t rows = batch * steps;

  for (std::size_t bi = 0; bi < batch; ++bi) {
    const double* src = x.flat().data() + bi * steps * in_;
    for (std::size_t t = 0; t < steps; ++t) {
      std::copy(src + t * in_, src + (t + 1) * in_,
                x_tm_.row_span(t * batch + bi).begin());
    }
  }

  // Weight panels: packed once, re-validated per pass (a version-counter
  // compare unless the optimizer touched the weights since last pack).
  wx_pack_.ensure(wx_, Trans::kNone);
  wh_zr_pack_.ensure_block(wh_, Trans::kNone, 0, 2 * units_);
  wh_h_pack_.ensure_block(wh_, Trans::kNone, 2 * units_, units_);

  // Input projection for the entire sequence in one GEMM, then the bias.
  gemm_raw(Trans::kNone, rows, 1.0, x_tm_.flat().data(), in_, wx_pack_, 0.0,
           gates_.flat().data(), g3);
  const double* bias = b_.flat().data();
  for (std::size_t r = 0; r < rows; ++r) {
    double* arow = gates_.flat().data() + r * g3;
    for (std::size_t j = 0; j < g3; ++j) arow[j] += bias[j];
  }

  for (std::size_t t = 0; t < steps; ++t) {
    double* a = gates_.flat().data() + t * batch * g3;
    const double* h_prev = h_seq_.flat().data() + t * batch * units_;
    // z/r recurrent terms see the raw previous state: the [z | r]
    // column block of Wh, prepacked as its own (units x 2*units) panel.
    gemm_raw(Trans::kNone, batch, 1.0, h_prev, units_, wh_zr_pack_, 1.0, a,
             g3);
    // Fused z/r gate sigmoids + the candidate's recurrent input
    // r .* h_{t-1} (tensor::vmath).
    double* rh = rh_.flat().data() + t * batch * units_;
    tensor::gru_pointwise_zr(batch, units_, a, h_prev, rh);
    // Candidate recurrent term against the [h] column block of Wh.
    gemm_raw(Trans::kNone, batch, 1.0, rh, units_, wh_h_pack_, 1.0,
             a + 2 * units_, g3);
    // Fused candidate tanh + state blend, scattered straight into the
    // batch-major output (tensor::vmath).
    double* h_new = h_seq_.flat().data() + (t + 1) * batch * units_;
    tensor::gru_pointwise_out(batch, units_, a, h_prev, h_new,
                              out.flat().data() + t * units_,
                              steps * units_);
  }

  (void)training;  // the workspaces double as the BPTT caches
}

void GRU::backward_into(const Tensor3& grad_output,
                        std::span<Tensor3* const> input_grads) {
  const std::size_t batch = ws_batch_, steps = ws_steps_;
  if (grad_output.dim0() != batch || grad_output.dim1() != steps ||
      grad_output.dim2() != units_ || input_grads.size() != 1 ||
      input_grads[0] == nullptr) {
    throw std::invalid_argument("GRU::backward: gradient shape mismatch");
  }
  const std::size_t g3 = 3 * units_;
  const std::size_t rows = batch * steps;

  // dh_ carries state across timesteps and must start the recursion at
  // zero; every other workspace is fully overwritten below.
  dh_.fill(0.0);

  // Transposed weight panels for the input-gradient GEMMs (packed once;
  // transposition happened at pack time, so BPTT reads them forward).
  wh_h_t_pack_.ensure_block(wh_, Trans::kTranspose, 2 * units_, units_);
  wh_zr_t_pack_.ensure_block(wh_, Trans::kTranspose, 0, 2 * units_);
  wx_t_pack_.ensure(wx_, Trans::kTranspose);

  double* whg = wh_grad_.flat().data();
  double* bg = b_grad_.flat().data();

  for (std::size_t t = steps; t-- > 0;) {
    const double* gates = gates_.flat().data() + t * batch * g3;
    const double* h_prev = h_seq_.flat().data() + t * batch * units_;
    const double* rh = rh_.flat().data() + t * batch * units_;
    double* da = da_.flat().data() + t * batch * g3;

    // Through h_new = (1 - z) h_prev + z hh (tensor::vmath): fill the z
    // and candidate pre-activation gradients; dh_ is rewritten with the
    // direct (1 - z) path and the remaining contributions accumulate
    // below.
    tensor::gru_pointwise_backward_zh(batch, units_, gates, h_prev,
                                      grad_output.flat().data() + t * units_,
                                      steps * units_, dh_.flat().data(), da);

    // d(r .* h_prev) = da_h Uh^T over the candidate column block.
    gemm_raw(Trans::kNone, batch, 1.0, da + 2 * units_, g3, wh_h_t_pack_, 0.0,
             drh_.flat().data(), units_);
    // Through rh = r .* h_prev, plus the deterministic row-order bias
    // accumulation over all three gate blocks (tensor::vmath).
    tensor::gru_pointwise_backward_r(batch, units_, gates, h_prev,
                                     drh_.flat().data(), dh_.flat().data(),
                                     da, bg);

    // Remaining recurrent paths, one GEMM each: dh_{t-1} += da_zr W_zr^T,
    // Wh_grad[:, z|r] += h_{t-1}^T da_zr, Wh_grad[:, h] += rh^T da_h.
    gemm_raw(Trans::kNone, batch, 1.0, da, g3, wh_zr_t_pack_, 1.0,
             dh_.flat().data(), units_);
    gemm_raw(Trans::kTranspose, Trans::kNone, units_, 2 * units_, batch, 1.0,
             h_prev, units_, da, g3, 1.0, whg, g3);
    gemm_raw(Trans::kTranspose, Trans::kNone, units_, units_, batch, 1.0, rh,
             units_, da + 2 * units_, g3, 1.0, whg + 2 * units_, g3);
  }

  // Whole-sequence slab GEMMs: Wx_grad += X^T dA and dX = dA Wx^T.
  gemm_raw(Trans::kTranspose, Trans::kNone, in_, g3, rows, 1.0,
           x_tm_.flat().data(), in_, da_.flat().data(), g3, 1.0,
           wx_grad_.flat().data(), g3);
  gemm_raw(Trans::kNone, rows, 1.0, da_.flat().data(), g3, wx_t_pack_, 0.0,
           dx_tm_.flat().data(), in_);

  Tensor3& dx = *input_grads[0];
  for (std::size_t bi = 0; bi < batch; ++bi) {
    double* dst = dx.flat().data() + bi * steps * in_;
    for (std::size_t t = 0; t < steps; ++t) {
      const auto src = dx_tm_.row_span(t * batch + bi);
      std::copy(src.begin(), src.end(), dst + t * in_);
    }
  }
}

void GRU::repack_weights() {
  wx_pack_.ensure(wx_, Trans::kNone);
  wh_zr_pack_.ensure_block(wh_, Trans::kNone, 0, 2 * units_);
  wh_h_pack_.ensure_block(wh_, Trans::kNone, 2 * units_, units_);
  wh_zr_t_pack_.ensure_block(wh_, Trans::kTranspose, 0, 2 * units_);
  wh_h_t_pack_.ensure_block(wh_, Trans::kTranspose, 2 * units_, units_);
  wx_t_pack_.ensure(wx_, Trans::kTranspose);
}

std::vector<Matrix*> GRU::parameters() { return {&wx_, &wh_, &b_}; }
std::vector<Matrix*> GRU::gradients() {
  return {&wx_grad_, &wh_grad_, &b_grad_};
}

std::string GRU::name() const { return "GRU(" + std::to_string(units_) + ")"; }

}  // namespace geonas::nn
