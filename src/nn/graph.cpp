#include "nn/graph.hpp"

#include <sstream>
#include <stdexcept>

namespace geonas::nn {

GraphNetwork::GraphNetwork() {
  nodes_.emplace_back();  // node 0: the graph input placeholder
}

std::size_t GraphNetwork::add_node(std::unique_ptr<Layer> layer,
                                   std::vector<std::size_t> input_ids) {
  if (!layer) throw std::invalid_argument("GraphNetwork: null layer");
  if (input_ids.empty()) {
    throw std::invalid_argument("GraphNetwork: node needs at least one input");
  }
  for (std::size_t id : input_ids) {
    if (id >= nodes_.size()) {
      throw std::invalid_argument(
          "GraphNetwork: input id refers to a node that does not exist yet");
    }
  }
  if (layer->arity() != input_ids.size()) {
    throw std::invalid_argument("GraphNetwork: layer arity " +
                                std::to_string(layer->arity()) +
                                " != input count " +
                                std::to_string(input_ids.size()));
  }
  Node node;
  node.layer = std::move(layer);
  node.inputs = std::move(input_ids);
  nodes_.push_back(std::move(node));
  output_ = nodes_.size() - 1;
  bound_batch_ = bound_steps_ = bound_features_ = 0;  // force a rebind
  grad_cache_.clear();
  return output_;
}

void GraphNetwork::set_output(std::size_t node_id) {
  if (node_id >= nodes_.size()) {
    throw std::invalid_argument("GraphNetwork::set_output: bad node id");
  }
  output_ = node_id;
}

void GraphNetwork::init_params(std::uint64_t seed) {
  Rng rng(seed);
  for (auto& node : nodes_) {
    if (node.layer) node.layer->init_params(rng);
  }
}

void GraphNetwork::bind(std::size_t batch, std::size_t steps,
                        std::size_t features) {
  if (!arena_) arena_ = std::make_unique<tensor::Arena>();
  arena_->reset();
  nodes_[0].out_features = features;
  for (std::size_t i = 1; i < nodes_.size(); ++i) {
    Node& node = nodes_[i];
    const std::size_t in_feat = nodes_[node.inputs[0]].out_features;
    node.out_features = node.layer->output_features(in_feat);
    node.layer->bind_workspace(*arena_, batch, steps, in_feat);
    node.activation.ensure_shape(batch, steps, node.out_features);
    node.in_ptrs.reserve(node.inputs.size());
    node.grad_ptrs.reserve(node.inputs.size());
    node.grad_scratch.resize(node.inputs.size());
  }
  bound_batch_ = batch;
  bound_steps_ = steps;
  bound_features_ = features;
  arena_->export_stats();
}

Tensor3 GraphNetwork::forward(const Tensor3& input, bool training) {
  return forward_ref(input, training);
}

const Tensor3& GraphNetwork::forward_ref(const Tensor3& input, bool training) {
  if (nodes_.size() < 2 || output_ == 0) {
    throw std::logic_error("GraphNetwork: no computational nodes");
  }
  if (input.dim0() != bound_batch_ || input.dim1() != bound_steps_ ||
      input.dim2() != bound_features_) {
    bind(input.dim0(), input.dim1(), input.dim2());
  }
  external_input_ = &input;
  for (std::size_t i = 1; i < nodes_.size(); ++i) {
    Node& node = nodes_[i];
    node.in_ptrs.clear();
    for (std::size_t id : node.inputs) {
      node.in_ptrs.push_back(id == 0 ? &input : &nodes_[id].activation);
    }
    node.layer->forward_into(node.in_ptrs, node.activation, training);
  }
  return nodes_[output_].activation;
}

Tensor3 GraphNetwork::backward(const Tensor3& grad_output) {
  return backward_ref(grad_output);
}

const Tensor3& GraphNetwork::backward_ref(const Tensor3& grad_output) {
  if (external_input_ == nullptr) {
    throw std::logic_error("GraphNetwork: backward before forward");
  }
  for (auto& node : nodes_) node.grad_set = false;

  for (std::size_t i = nodes_.size(); i-- > 1;) {
    Node& node = nodes_[i];
    const bool is_output = i == output_;
    if (!is_output && !node.grad_set) {
      continue;  // node not on a path to the output
    }
    // Each input slot's gradient is written directly into the source
    // node's buffer on first visit; fan-out slots go through the node's
    // scratch tensor and accumulate after the layer call. Layers fully
    // overwrite every slot, so direct writes need no pre-zeroing.
    node.grad_ptrs.clear();
    for (std::size_t k = 0; k < node.inputs.size(); ++k) {
      Node& src = nodes_[node.inputs[k]];
      const Tensor3& shape_of =
          node.inputs[k] == 0 ? *external_input_ : src.activation;
      if (!src.grad_set) {
        src.grad.ensure_shape(shape_of.dim0(), shape_of.dim1(),
                              shape_of.dim2());
        node.grad_ptrs.push_back(&src.grad);
        src.grad_set = true;
      } else {
        node.grad_scratch[k].ensure_shape(shape_of.dim0(), shape_of.dim1(),
                                          shape_of.dim2());
        node.grad_ptrs.push_back(&node.grad_scratch[k]);
      }
    }
    node.layer->backward_into(is_output ? grad_output : node.grad,
                              node.grad_ptrs);
    for (std::size_t k = 0; k < node.inputs.size(); ++k) {
      if (node.grad_ptrs[k] != &node.grad_scratch[k]) continue;
      Node& src = nodes_[node.inputs[k]];
      auto dst = src.grad.flat();
      const auto add = node.grad_scratch[k].flat();
      if (dst.size() != add.size()) {
        throw std::logic_error("GraphNetwork: fan-out gradient shape clash");
      }
      for (std::size_t j = 0; j < dst.size(); ++j) dst[j] += add[j];
    }
  }
  if (!nodes_[0].grad_set) {
    throw std::logic_error("GraphNetwork: input unreachable from output");
  }
  return nodes_[0].grad;
}

void GraphNetwork::zero_grad() {
  // Zeroes through a cached pointer list: Layer::zero_grad() builds its
  // gradient vector per call, which would put one allocation per layer
  // on every batch (zero_grad runs before each training step).
  if (grad_cache_.empty()) grad_cache_ = gradients();
  for (Matrix* g : grad_cache_) g->fill(0.0);
}

void GraphNetwork::repack_weights() {
  for (auto& node : nodes_) {
    if (node.layer) node.layer->repack_weights();
  }
}

std::vector<Matrix*> GraphNetwork::parameters() {
  std::vector<Matrix*> out;
  for (auto& node : nodes_) {
    if (!node.layer) continue;
    for (Matrix* p : node.layer->parameters()) out.push_back(p);
  }
  return out;
}

std::vector<Matrix*> GraphNetwork::gradients() {
  std::vector<Matrix*> out;
  for (auto& node : nodes_) {
    if (!node.layer) continue;
    for (Matrix* g : node.layer->gradients()) out.push_back(g);
  }
  return out;
}

std::size_t GraphNetwork::param_count() {
  std::size_t n = 0;
  for (auto& node : nodes_) {
    if (node.layer) n += node.layer->param_count();
  }
  return n;
}

std::string GraphNetwork::to_dot(const std::string& graph_name) const {
  std::ostringstream os;
  os << "digraph " << graph_name << " {\n  rankdir=BT;\n"
     << "  node [shape=box, fontname=\"Helvetica\"];\n"
     << "  n0 [label=\"Input\", style=filled, fillcolor=lightgray];\n";
  for (std::size_t i = 1; i < nodes_.size(); ++i) {
    os << "  n" << i << " [label=\"" << nodes_[i].layer->name() << "\"";
    if (i == output_) os << ", style=filled, fillcolor=lightblue";
    os << "];\n";
  }
  for (std::size_t i = 1; i < nodes_.size(); ++i) {
    for (std::size_t src : nodes_[i].inputs) {
      os << "  n" << src << " -> n" << i << ";\n";
    }
  }
  os << "}\n";
  return os.str();
}

std::string GraphNetwork::describe() const {
  std::ostringstream os;
  os << "node 0: Input\n";
  for (std::size_t i = 1; i < nodes_.size(); ++i) {
    os << "node " << i << ": " << nodes_[i].layer->name() << " <- (";
    for (std::size_t k = 0; k < nodes_[i].inputs.size(); ++k) {
      os << nodes_[i].inputs[k] << (k + 1 < nodes_[i].inputs.size() ? ", " : "");
    }
    os << ")" << (i == output_ ? "  [output]" : "") << "\n";
  }
  return os.str();
}

}  // namespace geonas::nn
