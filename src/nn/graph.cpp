#include "nn/graph.hpp"

#include <sstream>
#include <stdexcept>

namespace geonas::nn {

GraphNetwork::GraphNetwork() {
  nodes_.emplace_back();  // node 0: the graph input placeholder
}

std::size_t GraphNetwork::add_node(std::unique_ptr<Layer> layer,
                                   std::vector<std::size_t> input_ids) {
  if (!layer) throw std::invalid_argument("GraphNetwork: null layer");
  if (input_ids.empty()) {
    throw std::invalid_argument("GraphNetwork: node needs at least one input");
  }
  for (std::size_t id : input_ids) {
    if (id >= nodes_.size()) {
      throw std::invalid_argument(
          "GraphNetwork: input id refers to a node that does not exist yet");
    }
  }
  if (layer->arity() != input_ids.size()) {
    throw std::invalid_argument("GraphNetwork: layer arity " +
                                std::to_string(layer->arity()) +
                                " != input count " +
                                std::to_string(input_ids.size()));
  }
  Node node;
  node.layer = std::move(layer);
  node.inputs = std::move(input_ids);
  nodes_.push_back(std::move(node));
  output_ = nodes_.size() - 1;
  return output_;
}

void GraphNetwork::set_output(std::size_t node_id) {
  if (node_id >= nodes_.size()) {
    throw std::invalid_argument("GraphNetwork::set_output: bad node id");
  }
  output_ = node_id;
}

void GraphNetwork::init_params(std::uint64_t seed) {
  Rng rng(seed);
  for (auto& node : nodes_) {
    if (node.layer) node.layer->init_params(rng);
  }
}

Tensor3 GraphNetwork::forward(const Tensor3& input, bool training) {
  if (nodes_.size() < 2 || output_ == 0) {
    throw std::logic_error("GraphNetwork: no computational nodes");
  }
  nodes_[0].activation = input;
  for (std::size_t i = 1; i < nodes_.size(); ++i) {
    Node& node = nodes_[i];
    std::vector<const Tensor3*> ins;
    ins.reserve(node.inputs.size());
    for (std::size_t id : node.inputs) ins.push_back(&nodes_[id].activation);
    node.activation = node.layer->forward(ins, training);
  }
  Tensor3 out = nodes_[output_].activation;
  if (!training) {
    // Drop cached activations to keep inference memory flat.
    for (auto& node : nodes_) node.activation = Tensor3{};
  }
  return out;
}

Tensor3 GraphNetwork::backward(const Tensor3& grad_output) {
  for (auto& node : nodes_) {
    node.grad = Tensor3{};
    node.grad_set = false;
  }
  nodes_[output_].grad = grad_output;
  nodes_[output_].grad_set = true;

  for (std::size_t i = nodes_.size(); i-- > 1;) {
    Node& node = nodes_[i];
    if (!node.grad_set) continue;  // node not on a path to the output
    std::vector<Tensor3> input_grads = node.layer->backward(node.grad);
    if (input_grads.size() != node.inputs.size()) {
      throw std::logic_error("GraphNetwork: layer returned wrong grad count");
    }
    for (std::size_t k = 0; k < node.inputs.size(); ++k) {
      Node& src = nodes_[node.inputs[k]];
      if (!src.grad_set) {
        src.grad = std::move(input_grads[k]);
        src.grad_set = true;
      } else {
        auto dst = src.grad.flat();
        const auto add = input_grads[k].flat();
        if (dst.size() != add.size()) {
          throw std::logic_error("GraphNetwork: fan-out gradient shape clash");
        }
        for (std::size_t j = 0; j < dst.size(); ++j) dst[j] += add[j];
      }
    }
    node.grad = Tensor3{};  // release as soon as propagated
  }
  if (!nodes_[0].grad_set) {
    throw std::logic_error("GraphNetwork: input unreachable from output");
  }
  return std::move(nodes_[0].grad);
}

void GraphNetwork::zero_grad() {
  for (auto& node : nodes_) {
    if (node.layer) node.layer->zero_grad();
  }
}

std::vector<Matrix*> GraphNetwork::parameters() {
  std::vector<Matrix*> out;
  for (auto& node : nodes_) {
    if (!node.layer) continue;
    for (Matrix* p : node.layer->parameters()) out.push_back(p);
  }
  return out;
}

std::vector<Matrix*> GraphNetwork::gradients() {
  std::vector<Matrix*> out;
  for (auto& node : nodes_) {
    if (!node.layer) continue;
    for (Matrix* g : node.layer->gradients()) out.push_back(g);
  }
  return out;
}

std::size_t GraphNetwork::param_count() {
  std::size_t n = 0;
  for (auto& node : nodes_) {
    if (node.layer) n += node.layer->param_count();
  }
  return n;
}

std::string GraphNetwork::to_dot(const std::string& graph_name) const {
  std::ostringstream os;
  os << "digraph " << graph_name << " {\n  rankdir=BT;\n"
     << "  node [shape=box, fontname=\"Helvetica\"];\n"
     << "  n0 [label=\"Input\", style=filled, fillcolor=lightgray];\n";
  for (std::size_t i = 1; i < nodes_.size(); ++i) {
    os << "  n" << i << " [label=\"" << nodes_[i].layer->name() << "\"";
    if (i == output_) os << ", style=filled, fillcolor=lightblue";
    os << "];\n";
  }
  for (std::size_t i = 1; i < nodes_.size(); ++i) {
    for (std::size_t src : nodes_[i].inputs) {
      os << "  n" << src << " -> n" << i << ";\n";
    }
  }
  os << "}\n";
  return os.str();
}

std::string GraphNetwork::describe() const {
  std::ostringstream os;
  os << "node 0: Input\n";
  for (std::size_t i = 1; i < nodes_.size(); ++i) {
    os << "node " << i << ": " << nodes_[i].layer->name() << " <- (";
    for (std::size_t k = 0; k < nodes_[i].inputs.size(); ++k) {
      os << nodes_[i].inputs[k] << (k + 1 < nodes_[i].inputs.size() ? ", " : "");
    }
    os << ")" << (i == output_ ? "  [output]" : "") << "\n";
  }
  return os.str();
}

}  // namespace geonas::nn
