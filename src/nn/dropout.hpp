// Inverted dropout layer.
//
// During training each element is zeroed with probability p and the
// survivors scaled by 1/(1-p); inference is the identity. The mask is
// drawn from a per-layer deterministic stream reseeded by init_params, so
// training runs stay reproducible. The mask lives in the bound arena:
// steady-state training draws it in place with no allocation.
#pragma once

#include "nn/layer.hpp"

namespace geonas::nn {

class Dropout final : public Layer {
 public:
  explicit Dropout(double rate);

  void bind_workspace(tensor::Arena& arena, std::size_t batch,
                      std::size_t steps, std::size_t in_features) override;
  void forward_into(std::span<const Tensor3* const> inputs, Tensor3& out,
                    bool training) override;
  void backward_into(const Tensor3& grad_output,
                     std::span<Tensor3* const> input_grads) override;
  void init_params(Rng& rng) override { rng_ = rng.fork(); }
  [[nodiscard]] std::string name() const override;

  [[nodiscard]] double rate() const noexcept { return rate_; }

 private:
  double rate_;
  Rng rng_;
  // Keep-scale factors from the latest training forward.
  tensor::ArenaMatrix mask_;  // [B*T, features]
  std::size_t ws_batch_ = 0;
  std::size_t ws_steps_ = 0;
  std::size_t ws_features_ = 0;
};

}  // namespace geonas::nn
