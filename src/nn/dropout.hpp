// Inverted dropout layer.
//
// During training each element is zeroed with probability p and the
// survivors scaled by 1/(1-p); inference is the identity. The mask is
// drawn from a per-layer deterministic stream reseeded by init_params, so
// training runs stay reproducible.
#pragma once

#include "nn/layer.hpp"

namespace geonas::nn {

class Dropout final : public Layer {
 public:
  explicit Dropout(double rate);

  Tensor3 forward(std::span<const Tensor3* const> inputs,
                  bool training) override;
  std::vector<Tensor3> backward(const Tensor3& grad_output) override;
  void init_params(Rng& rng) override { rng_ = rng.fork(); }
  [[nodiscard]] std::string name() const override;

  [[nodiscard]] double rate() const noexcept { return rate_; }

 private:
  double rate_;
  Rng rng_;
  Tensor3 mask_;  // keep-scale factors from the latest training forward
};

}  // namespace geonas::nn
