// Scalar activation functions and their derivatives.
#pragma once

#include <cmath>

namespace geonas::nn {

inline double sigmoid(double x) noexcept { return 1.0 / (1.0 + std::exp(-x)); }
/// Derivative expressed in terms of the activation value s = sigmoid(x).
inline double sigmoid_grad_from_value(double s) noexcept { return s * (1.0 - s); }

inline double tanh_act(double x) noexcept { return std::tanh(x); }
/// Derivative in terms of the activation value t = tanh(x).
inline double tanh_grad_from_value(double t) noexcept { return 1.0 - t * t; }

inline double relu(double x) noexcept { return x > 0.0 ? x : 0.0; }
inline double relu_grad_from_input(double x) noexcept { return x > 0.0 ? 1.0 : 0.0; }

/// Supported activations for Dense layers.
enum class Activation { kIdentity, kReLU, kTanh, kSigmoid };

inline double apply_activation(Activation a, double x) noexcept {
  switch (a) {
    case Activation::kReLU: return relu(x);
    case Activation::kTanh: return tanh_act(x);
    case Activation::kSigmoid: return sigmoid(x);
    case Activation::kIdentity: break;
  }
  return x;
}

/// d(activation)/dx given pre-activation x and activation value y.
inline double activation_grad(Activation a, double x, double y) noexcept {
  switch (a) {
    case Activation::kReLU: return relu_grad_from_input(x);
    case Activation::kTanh: return tanh_grad_from_value(y);
    case Activation::kSigmoid: return sigmoid_grad_from_value(y);
    case Activation::kIdentity: break;
  }
  return 1.0;
}

[[nodiscard]] const char* activation_name(Activation a) noexcept;

}  // namespace geonas::nn
