// Scalar activation functions, their derivatives, and span transforms.
//
// The scalar functions are the per-element reference used by callers
// that touch single values (initializers, tests, the RL heads). Hot
// per-element loops in the nn layers must not call them — they route
// through the span transforms below, which dispatch to the vectorized
// tensor::vmath backend (see tools/geonas_lint.py, transcendental-in-nn).
#pragma once

#include <cmath>
#include <span>

namespace geonas::nn {

/// Numerically stable two-sided sigmoid: exp only ever sees a
/// non-positive argument, so large |x| saturates to exactly 0/1 instead
/// of overflowing exp(-x) to inf on the way (the naive 1/(1+exp(-x))
/// does at x <= -709.8).
inline double sigmoid(double x) noexcept {
  // geonas-lint: allow(transcendental-in-nn) scalar reference; loops use tensor::vmath
  const double e = std::exp(-std::fabs(x));
  const double num = std::signbit(x) ? e : 1.0;
  return num / (1.0 + e);
}
/// Derivative expressed in terms of the activation value s = sigmoid(x).
inline double sigmoid_grad_from_value(double s) noexcept { return s * (1.0 - s); }

// geonas-lint: allow(transcendental-in-nn) scalar reference; loops use tensor::vmath
inline double tanh_act(double x) noexcept { return std::tanh(x); }
/// Derivative in terms of the activation value t = tanh(x).
inline double tanh_grad_from_value(double t) noexcept { return 1.0 - t * t; }

inline double relu(double x) noexcept { return x > 0.0 ? x : 0.0; }
inline double relu_grad_from_input(double x) noexcept { return x > 0.0 ? 1.0 : 0.0; }

/// Supported activations for Dense layers.
enum class Activation { kIdentity, kReLU, kTanh, kSigmoid };

inline double apply_activation(Activation a, double x) noexcept {
  switch (a) {
    case Activation::kReLU: return relu(x);
    case Activation::kTanh: return tanh_act(x);
    case Activation::kSigmoid: return sigmoid(x);
    case Activation::kIdentity: break;
  }
  return x;
}

/// d(activation)/dx given pre-activation x and activation value y.
inline double activation_grad(Activation a, double x, double y) noexcept {
  switch (a) {
    case Activation::kReLU: return relu_grad_from_input(x);
    case Activation::kTanh: return tanh_grad_from_value(y);
    case Activation::kSigmoid: return sigmoid_grad_from_value(y);
    case Activation::kIdentity: break;
  }
  return 1.0;
}

/// In-place span activation through the tensor::vmath backend — what
/// the Dense/Merge forward passes call instead of per-element loops.
void apply_activation(Activation a, std::span<double> x);

/// In-place gradient-through-activation: dz[i] *= d(act)/dx at element
/// i, given the cached pre-activations and activation values. All three
/// spans must have equal length.
void activation_grad_mul(Activation a, std::span<double> dz,
                         std::span<const double> pre,
                         std::span<const double> post);

[[nodiscard]] const char* activation_name(Activation a) noexcept;

}  // namespace geonas::nn
