#include "nn/loss.hpp"

#include <stdexcept>

#include "tensor/stats.hpp"

namespace geonas::nn {

namespace {
void require_same(const Tensor3& a, const Tensor3& b, const char* op) {
  if (a.dim0() != b.dim0() || a.dim1() != b.dim1() || a.dim2() != b.dim2()) {
    throw std::invalid_argument(std::string(op) + ": tensor shape mismatch");
  }
}
}  // namespace

double mse_loss(const Tensor3& truth, const Tensor3& predicted) {
  require_same(truth, predicted, "mse_loss");
  const auto tf = truth.flat();
  const auto pf = predicted.flat();
  double acc = 0.0;
  for (std::size_t i = 0; i < tf.size(); ++i) {
    const double d = pf[i] - tf[i];
    acc += d * d;
  }
  return acc / static_cast<double>(tf.size());
}

Tensor3 mse_grad(const Tensor3& truth, const Tensor3& predicted) {
  Tensor3 grad;
  mse_grad_into(truth, predicted, grad);
  return grad;
}

void mse_grad_into(const Tensor3& truth, const Tensor3& predicted,
                   Tensor3& grad) {
  require_same(truth, predicted, "mse_grad");
  grad.ensure_shape(truth.dim0(), truth.dim1(), truth.dim2());
  const auto tf = truth.flat();
  const auto pf = predicted.flat();
  auto gf = grad.flat();
  const double scale = 2.0 / static_cast<double>(tf.size());
  for (std::size_t i = 0; i < tf.size(); ++i) {
    gf[i] = scale * (pf[i] - tf[i]);
  }
}

double r2_metric(const Tensor3& truth, const Tensor3& predicted) {
  require_same(truth, predicted, "r2_metric");
  return r2_score(truth.flat(), predicted.flat());
}

}  // namespace geonas::nn
