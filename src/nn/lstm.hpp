// Long short-term memory layer with full backpropagation through time.
//
// Standard LSTM (Hochreiter & Schmidhuber) with Keras-compatible gate
// layout [i, f, g, o], sigmoid recurrent gates, tanh candidate/output
// nonlinearity, Glorot input-kernel init, orthogonal-ish recurrent init
// and unit forget-gate bias. Always returns the full hidden sequence
// (return_sequences=true), which is what the paper's stacked seq-to-seq
// architectures need.
//
// Both passes run in the batched-GEMM formulation over time-major
// workspaces (row t * batch + b): the input projection X * Wx is one
// GEMM over the whole (batch * steps) slab, each timestep's recurrent
// update H_{t-1} * Wh is one (batch, units) x (units, 4 * units) GEMM,
// and BPTT accumulates the Wx/dX gradients with single whole-sequence
// slab GEMMs (see DESIGN.md, "Kernel layer"). The workspaces are carved
// from an Arena at bind time, so steady-state training performs no
// allocation at all.
#pragma once

#include "nn/layer.hpp"

namespace geonas::nn {

class LSTM final : public Layer {
 public:
  LSTM(std::size_t in_features, std::size_t units);

  void bind_workspace(tensor::Arena& arena, std::size_t batch,
                      std::size_t steps, std::size_t in_features) override;
  void forward_into(std::span<const Tensor3* const> inputs, Tensor3& out,
                    bool training) override;
  void backward_into(const Tensor3& grad_output,
                     std::span<Tensor3* const> input_grads) override;
  void init_params(Rng& rng) override;
  void repack_weights() override;
  std::vector<Matrix*> parameters() override;
  std::vector<Matrix*> gradients() override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::size_t output_features(
      std::size_t /*in_features*/) const override {
    return units_;
  }

  [[nodiscard]] std::size_t units() const noexcept { return units_; }
  [[nodiscard]] std::size_t in_features() const noexcept { return in_; }

 private:
  std::size_t in_;
  std::size_t units_;

  Matrix wx_;  // in x 4*units, gate blocks [i | f | g | o]
  Matrix wh_;  // units x 4*units
  Matrix b_;   // 1 x 4*units
  Matrix wx_grad_;
  Matrix wh_grad_;
  Matrix b_grad_;

  // Pack-once weight panels for every GEMM that multiplies persistent
  // weights (forward x*Wx / h*Wh, backward dZ*Wh^T / dZ*Wx^T); the
  // gradient GEMMs multiply activations on both sides and stay on the
  // per-call path. Re-validated lazily against Matrix::version() before
  // each use and re-packed eagerly by repack_weights() after optimizer
  // steps. Owned storage, not the self-arena (which resets per rebind).
  tensor::PackedPanels wx_pack_;    // op = Wx
  tensor::PackedPanels wh_pack_;    // op = Wh
  tensor::PackedPanels wh_t_pack_;  // op = Wh^T
  tensor::PackedPanels wx_t_pack_;  // op = Wx^T

  // Time-major workspaces carved from the bound arena, valid between a
  // training forward and its backward; any forward (training or not)
  // reuses and overwrites them. Rows [0, B) of h_seq_/c_seq_ are the
  // zero initial state — written only by the bind-time zero fill.
  tensor::ArenaMatrix x_tm_;   // [T*B, in] time-major input copy
  tensor::ArenaMatrix gates_;  // [T*B, 4*units] pre-activations, then gates
  tensor::ArenaMatrix h_seq_;  // [(T+1)*B, units]
  tensor::ArenaMatrix c_seq_;  // [(T+1)*B, units]
  tensor::ArenaMatrix dz_;     // [T*B, 4*units] gate pre-activation grads
  tensor::ArenaMatrix dh_;     // [B, units] running dL/dh_{t-1}
  tensor::ArenaMatrix dc_;     // [B, units] running dL/dc_{t-1}
  tensor::ArenaMatrix dx_tm_;  // [T*B, in]
  std::size_t ws_batch_ = 0;
  std::size_t ws_steps_ = 0;
};

}  // namespace geonas::nn
