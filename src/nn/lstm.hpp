// Long short-term memory layer with full backpropagation through time.
//
// Standard LSTM (Hochreiter & Schmidhuber) with Keras-compatible gate
// layout [i, f, g, o], sigmoid recurrent gates, tanh candidate/output
// nonlinearity, Glorot input-kernel init, orthogonal-ish recurrent init
// and unit forget-gate bias. Always returns the full hidden sequence
// (return_sequences=true), which is what the paper's stacked seq-to-seq
// architectures need.
#pragma once

#include "nn/layer.hpp"

namespace geonas::nn {

class LSTM final : public Layer {
 public:
  LSTM(std::size_t in_features, std::size_t units);

  Tensor3 forward(std::span<const Tensor3* const> inputs,
                  bool training) override;
  std::vector<Tensor3> backward(const Tensor3& grad_output) override;
  void init_params(Rng& rng) override;
  std::vector<Matrix*> parameters() override;
  std::vector<Matrix*> gradients() override;
  [[nodiscard]] std::string name() const override;

  [[nodiscard]] std::size_t units() const noexcept { return units_; }
  [[nodiscard]] std::size_t in_features() const noexcept { return in_; }

 private:
  std::size_t in_;
  std::size_t units_;

  Matrix wx_;  // in x 4*units, gate blocks [i | f | g | o]
  Matrix wh_;  // units x 4*units
  Matrix b_;   // 1 x 4*units
  Matrix wx_grad_;
  Matrix wh_grad_;
  Matrix b_grad_;

  // BPTT caches, valid between a training forward and its backward.
  Tensor3 input_cache_;    // [B, T, in]
  Tensor3 h_cache_;        // [B, T+1, units] (h_0 = 0 at index 0)
  Tensor3 c_cache_;        // [B, T+1, units]
  Tensor3 gates_cache_;    // [B, T, 4*units] post-nonlinearity gate values
};

}  // namespace geonas::nn
