// Long short-term memory layer with full backpropagation through time.
//
// Standard LSTM (Hochreiter & Schmidhuber) with Keras-compatible gate
// layout [i, f, g, o], sigmoid recurrent gates, tanh candidate/output
// nonlinearity, Glorot input-kernel init, orthogonal-ish recurrent init
// and unit forget-gate bias. Always returns the full hidden sequence
// (return_sequences=true), which is what the paper's stacked seq-to-seq
// architectures need.
//
// Both passes run in the batched-GEMM formulation over time-major
// workspaces (row t * batch + b): the input projection X * Wx is one
// GEMM over the whole (batch * steps) slab, each timestep's recurrent
// update H_{t-1} * Wh is one (batch, units) x (units, 4 * units) GEMM,
// and BPTT accumulates the Wx/dX gradients with single whole-sequence
// slab GEMMs (see DESIGN.md, "Kernel layer"). The workspaces are owned
// by the layer, so steady-state training performs no per-step
// allocation.
#pragma once

#include "nn/layer.hpp"

namespace geonas::nn {

class LSTM final : public Layer {
 public:
  LSTM(std::size_t in_features, std::size_t units);

  Tensor3 forward(std::span<const Tensor3* const> inputs,
                  bool training) override;
  std::vector<Tensor3> backward(const Tensor3& grad_output) override;
  void init_params(Rng& rng) override;
  std::vector<Matrix*> parameters() override;
  std::vector<Matrix*> gradients() override;
  [[nodiscard]] std::string name() const override;

  [[nodiscard]] std::size_t units() const noexcept { return units_; }
  [[nodiscard]] std::size_t in_features() const noexcept { return in_; }

 private:
  std::size_t in_;
  std::size_t units_;

  Matrix wx_;  // in x 4*units, gate blocks [i | f | g | o]
  Matrix wh_;  // units x 4*units
  Matrix b_;   // 1 x 4*units
  Matrix wx_grad_;
  Matrix wh_grad_;
  Matrix b_grad_;

  // Time-major workspaces, valid between a training forward and its
  // backward; any forward (training or not) reuses and overwrites them.
  Matrix x_tm_;     // [T*B, in] time-major input copy
  Matrix gates_;    // [T*B, 4*units] pre-activations, then gate values
  Matrix h_seq_;    // [(T+1)*B, units], rows [0, B) are h_0 = 0
  Matrix c_seq_;    // [(T+1)*B, units]
  Matrix dz_;       // [T*B, 4*units] gate pre-activation gradients
  Matrix dh_;       // [B, units] running dL/dh_{t-1}
  Matrix dc_;       // [B, units] running dL/dc_{t-1}
  Matrix dx_tm_;    // [T*B, in]
  std::size_t fwd_batch_ = 0;
  std::size_t fwd_steps_ = 0;
};

}  // namespace geonas::nn
