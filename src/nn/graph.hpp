// GraphNetwork: a directed-acyclic-graph neural network executor.
//
// This is the runtime counterpart of the paper's NAS search space
// (§III-A): nodes hold layers (LSTM / Dense / Identity / AddMerge), edges
// route tensors, and skip connections simply appear as extra in-edges on
// AddMerge nodes. Nodes must be added in topological order (every input id
// must already exist), which the searchspace builder guarantees by
// construction.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "nn/layer.hpp"

namespace geonas::nn {

class GraphNetwork {
 public:
  GraphNetwork();

  GraphNetwork(const GraphNetwork&) = delete;
  GraphNetwork& operator=(const GraphNetwork&) = delete;
  GraphNetwork(GraphNetwork&&) = default;
  GraphNetwork& operator=(GraphNetwork&&) = default;

  /// Node id of the (single) graph input.
  [[nodiscard]] static constexpr std::size_t input_id() { return 0; }

  /// Adds a node computing layer(inputs...). Returns its id. All ids in
  /// `input_ids` must already exist and input count must match the layer's
  /// arity. The last node added becomes the output unless set_output() is
  /// called.
  std::size_t add_node(std::unique_ptr<Layer> layer,
                       std::vector<std::size_t> input_ids);

  void set_output(std::size_t node_id);
  [[nodiscard]] std::size_t output_id() const noexcept { return output_; }
  [[nodiscard]] std::size_t node_count() const noexcept {
    return nodes_.size();
  }

  /// Initialize every layer's parameters from a single seed.
  void init_params(std::uint64_t seed);

  /// Forward pass; caches activations when `training` so backward() works.
  Tensor3 forward(const Tensor3& input, bool training = false);

  /// Backward pass for the latest training forward; returns the gradient
  /// with respect to the network input and accumulates parameter grads.
  Tensor3 backward(const Tensor3& grad_output);

  void zero_grad();
  [[nodiscard]] std::vector<Matrix*> parameters();
  [[nodiscard]] std::vector<Matrix*> gradients();
  [[nodiscard]] std::size_t param_count();

  /// Multi-line structural description (one node per line).
  [[nodiscard]] std::string describe() const;

  /// Graphviz DOT rendering of the DAG (paper Fig. 4-style diagrams):
  /// `dot -Tpng` turns it into the architecture figure.
  [[nodiscard]] std::string to_dot(const std::string& graph_name = "net") const;

 private:
  struct Node {
    std::unique_ptr<Layer> layer;       // null for the input node
    std::vector<std::size_t> inputs;
    Tensor3 activation;                 // valid during a training pass
    Tensor3 grad;                       // accumulated during backward
    bool grad_set = false;
  };

  std::vector<Node> nodes_;
  std::size_t output_ = 0;
};

}  // namespace geonas::nn
