// GraphNetwork: a directed-acyclic-graph neural network executor.
//
// This is the runtime counterpart of the paper's NAS search space
// (§III-A): nodes hold layers (LSTM / Dense / Identity / AddMerge), edges
// route tensors, and skip connections simply appear as extra in-edges on
// AddMerge nodes. Nodes must be added in topological order (every input id
// must already exist), which the searchspace builder guarantees by
// construction.
//
// Memory model (DESIGN.md, "Memory model"): the graph owns one
// tensor::Arena. Whenever the input batch shape changes, the arena is
// reset and every layer rebinds its workspaces onto it in topological
// order; per-node activation/gradient tensors are persistent members
// that resize only on shape change. After the first step at a given
// shape, forward_ref/backward_ref perform zero heap allocation.
// Activations are retained between inference calls (they are reused
// buffers, not per-call garbage).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "nn/layer.hpp"
#include "tensor/arena.hpp"

namespace geonas::nn {

class GraphNetwork {
 public:
  GraphNetwork();

  GraphNetwork(const GraphNetwork&) = delete;
  GraphNetwork& operator=(const GraphNetwork&) = delete;
  GraphNetwork(GraphNetwork&&) = default;
  GraphNetwork& operator=(GraphNetwork&&) = default;

  /// Node id of the (single) graph input.
  [[nodiscard]] static constexpr std::size_t input_id() { return 0; }

  /// Adds a node computing layer(inputs...). Returns its id. All ids in
  /// `input_ids` must already exist and input count must match the layer's
  /// arity. The last node added becomes the output unless set_output() is
  /// called.
  std::size_t add_node(std::unique_ptr<Layer> layer,
                       std::vector<std::size_t> input_ids);

  void set_output(std::size_t node_id);
  [[nodiscard]] std::size_t output_id() const noexcept { return output_; }
  [[nodiscard]] std::size_t node_count() const noexcept {
    return nodes_.size();
  }

  /// Initialize every layer's parameters from a single seed.
  void init_params(std::uint64_t seed);

  /// Forward pass; caches activations when `training` so backward() works.
  /// Allocating wrapper around forward_ref (returns a copy).
  Tensor3 forward(const Tensor3& input, bool training = false);

  /// Zero-copy forward: runs the graph and returns a reference to the
  /// output node's activation buffer, valid until the next forward or
  /// shape rebind. `input` must stay alive and unmodified until the
  /// matching backward when `training` (layers cache input pointers).
  const Tensor3& forward_ref(const Tensor3& input, bool training = false);

  /// Backward pass for the latest training forward; returns the gradient
  /// with respect to the network input and accumulates parameter grads.
  /// Allocating wrapper around backward_ref (returns a copy).
  Tensor3 backward(const Tensor3& grad_output);

  /// Zero-copy backward: returns a reference to the input-gradient
  /// buffer, valid until the next backward or shape rebind.
  const Tensor3& backward_ref(const Tensor3& grad_output);

  void zero_grad();
  /// Re-packs every layer's prepacked weight panels (Layer::
  /// repack_weights); the trainer calls this after each optimizer step.
  void repack_weights();
  [[nodiscard]] std::vector<Matrix*> parameters();
  [[nodiscard]] std::vector<Matrix*> gradients();
  [[nodiscard]] std::size_t param_count();

  /// The graph's workspace arena (observability/tests); null until the
  /// first forward binds a shape.
  [[nodiscard]] const tensor::Arena* arena() const noexcept {
    return arena_.get();
  }

  /// The layer computing node `id` (null for the input node 0). The
  /// non-const overload exists for compilers that lower a trained graph
  /// into another executor (serve::FrozenPlan reads parameters()).
  [[nodiscard]] const Layer* node_layer(std::size_t id) const {
    return nodes_.at(id).layer.get();
  }
  [[nodiscard]] Layer* node_layer(std::size_t id) {
    return nodes_.at(id).layer.get();
  }
  /// Input node ids of node `id` (empty for the input node 0).
  [[nodiscard]] const std::vector<std::size_t>& node_inputs(
      std::size_t id) const {
    return nodes_.at(id).inputs;
  }

  /// Multi-line structural description (one node per line).
  [[nodiscard]] std::string describe() const;

  /// Graphviz DOT rendering of the DAG (paper Fig. 4-style diagrams):
  /// `dot -Tpng` turns it into the architecture figure.
  [[nodiscard]] std::string to_dot(const std::string& graph_name = "net") const;

 private:
  struct Node {
    std::unique_ptr<Layer> layer;       // null for the input node
    std::vector<std::size_t> inputs;
    Tensor3 activation;                 // reused across passes
    Tensor3 grad;                       // accumulated during backward
    bool grad_set = false;
    std::size_t out_features = 0;       // valid after bind
    // Reused per-call pointer scratch (capacity reserved at bind).
    std::vector<const Tensor3*> in_ptrs;
    std::vector<Tensor3*> grad_ptrs;
    // Fan-out accumulation buffers, one per input slot; resized lazily.
    std::vector<Tensor3> grad_scratch;
  };

  /// Resets the arena and rebinds every layer's workspaces for
  /// (batch, steps, features); sizes activation/grad buffers.
  void bind(std::size_t batch, std::size_t steps, std::size_t features);

  std::vector<Node> nodes_;
  std::size_t output_ = 0;
  // Cached gradients() result for zero_grad (rebuilt after add_node);
  // the pointees are owned by the layers, so moves keep it valid.
  std::vector<Matrix*> grad_cache_;
  std::unique_ptr<tensor::Arena> arena_;
  const Tensor3* external_input_ = nullptr;
  std::size_t bound_batch_ = 0;
  std::size_t bound_steps_ = 0;
  std::size_t bound_features_ = 0;
};

}  // namespace geonas::nn
