// Gated recurrent unit layer with full backpropagation through time.
//
// The paper's related work (Ororbia et al., Rawal & Miikkulainen) explores
// hybrid recurrent cells; geonas ships a GRU so the search space can mix
// cell types (see searchspace::NodeOp::kind). Standard formulation
// (Cho et al. 2014), Keras-compatible gate layout [z, r, h]:
//   z_t = sigmoid(x_t Wz + h_{t-1} Uz + bz)      (update gate)
//   r_t = sigmoid(x_t Wr + h_{t-1} Ur + br)      (reset gate)
//   hh  = tanh(x_t Wh + (r_t .* h_{t-1}) Uh + bh)
//   h_t = (1 - z_t) .* h_{t-1} + z_t .* hh
// Always returns the full hidden sequence.
#pragma once

#include "nn/layer.hpp"

namespace geonas::nn {

class GRU final : public Layer {
 public:
  GRU(std::size_t in_features, std::size_t units);

  Tensor3 forward(std::span<const Tensor3* const> inputs,
                  bool training) override;
  std::vector<Tensor3> backward(const Tensor3& grad_output) override;
  void init_params(Rng& rng) override;
  std::vector<Matrix*> parameters() override;
  std::vector<Matrix*> gradients() override;
  [[nodiscard]] std::string name() const override;

  [[nodiscard]] std::size_t units() const noexcept { return units_; }
  [[nodiscard]] std::size_t in_features() const noexcept { return in_; }

 private:
  std::size_t in_;
  std::size_t units_;

  Matrix wx_;  // in x 3*units, gate blocks [z | r | h]
  Matrix wh_;  // units x 3*units
  Matrix b_;   // 1 x 3*units
  Matrix wx_grad_;
  Matrix wh_grad_;
  Matrix b_grad_;

  // BPTT caches.
  Tensor3 input_cache_;   // [B, T, in]
  Tensor3 h_cache_;       // [B, T+1, units]
  Tensor3 gates_cache_;   // [B, T, 3*units] post-nonlinearity [z, r, hh]
};

}  // namespace geonas::nn
