// Gated recurrent unit layer with full backpropagation through time.
//
// The paper's related work (Ororbia et al., Rawal & Miikkulainen) explores
// hybrid recurrent cells; geonas ships a GRU so the search space can mix
// cell types (see searchspace::NodeOp::kind). Standard formulation
// (Cho et al. 2014), Keras-compatible gate layout [z, r, h]:
//   z_t = sigmoid(x_t Wz + h_{t-1} Uz + bz)      (update gate)
//   r_t = sigmoid(x_t Wr + h_{t-1} Ur + br)      (reset gate)
//   hh  = tanh(x_t Wh + (r_t .* h_{t-1}) Uh + bh)
//   h_t = (1 - z_t) .* h_{t-1} + z_t .* hh
// Always returns the full hidden sequence.
//
// Like LSTM, both passes run in the batched-GEMM formulation over
// time-major workspaces: one whole-sequence GEMM for X * Wx, two
// per-timestep GEMMs for the recurrent terms (the z/r block against
// h_{t-1}, the candidate block against r .* h_{t-1}), and
// whole-sequence slab GEMMs for the Wx/dX gradients in BPTT. The
// strided gemm_raw interface lets the z/r and candidate column blocks
// of the fused Wh matrix be updated in place. Workspaces are carved
// from an Arena at bind time: steady-state training performs no
// allocation (see DESIGN.md, "Memory model").
#pragma once

#include "nn/layer.hpp"

namespace geonas::nn {

class GRU final : public Layer {
 public:
  GRU(std::size_t in_features, std::size_t units);

  void bind_workspace(tensor::Arena& arena, std::size_t batch,
                      std::size_t steps, std::size_t in_features) override;
  void forward_into(std::span<const Tensor3* const> inputs, Tensor3& out,
                    bool training) override;
  void backward_into(const Tensor3& grad_output,
                     std::span<Tensor3* const> input_grads) override;
  void init_params(Rng& rng) override;
  void repack_weights() override;
  std::vector<Matrix*> parameters() override;
  std::vector<Matrix*> gradients() override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::size_t output_features(
      std::size_t /*in_features*/) const override {
    return units_;
  }

  [[nodiscard]] std::size_t units() const noexcept { return units_; }
  [[nodiscard]] std::size_t in_features() const noexcept { return in_; }

 private:
  std::size_t in_;
  std::size_t units_;

  Matrix wx_;  // in x 3*units, gate blocks [z | r | h]
  Matrix wh_;  // units x 3*units
  Matrix b_;   // 1 x 3*units
  Matrix wx_grad_;
  Matrix wh_grad_;
  Matrix b_grad_;

  // Pack-once weight panels (see lstm.hpp). The per-timestep GEMMs
  // consume the [z | r] and [h] column blocks of the fused Wh
  // separately, so each block gets its own panel (forward and
  // transposed-backward variants); Wx packs whole.
  tensor::PackedPanels wx_pack_;       // op = Wx
  tensor::PackedPanels wh_zr_pack_;    // op = Wh[:, z|r]
  tensor::PackedPanels wh_h_pack_;     // op = Wh[:, h]
  tensor::PackedPanels wh_zr_t_pack_;  // op = Wh[:, z|r]^T
  tensor::PackedPanels wh_h_t_pack_;   // op = Wh[:, h]^T
  tensor::PackedPanels wx_t_pack_;     // op = Wx^T

  // Time-major workspaces (row t*batch + b) carved from the bound arena,
  // reused across calls. Rows [0, B) of h_seq_ are h_0 = 0 — written
  // only by the bind-time zero fill.
  tensor::ArenaMatrix x_tm_;   // [T*B, in]
  tensor::ArenaMatrix gates_;  // [T*B, 3*units] pre-activations, [z, r, hh]
  tensor::ArenaMatrix h_seq_;  // [(T+1)*B, units]
  tensor::ArenaMatrix rh_;     // [T*B, units] r_t .* h_{t-1}
  tensor::ArenaMatrix da_;     // [T*B, 3*units] gate pre-activation grads
  tensor::ArenaMatrix dh_;     // [B, units] running dL/dh_{t-1}
  tensor::ArenaMatrix drh_;    // [B, units] dL/d(r .* h_{t-1})
  tensor::ArenaMatrix dx_tm_;  // [T*B, in]
  std::size_t ws_batch_ = 0;
  std::size_t ws_steps_ = 0;
};

}  // namespace geonas::nn
