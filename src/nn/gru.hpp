// Gated recurrent unit layer with full backpropagation through time.
//
// The paper's related work (Ororbia et al., Rawal & Miikkulainen) explores
// hybrid recurrent cells; geonas ships a GRU so the search space can mix
// cell types (see searchspace::NodeOp::kind). Standard formulation
// (Cho et al. 2014), Keras-compatible gate layout [z, r, h]:
//   z_t = sigmoid(x_t Wz + h_{t-1} Uz + bz)      (update gate)
//   r_t = sigmoid(x_t Wr + h_{t-1} Ur + br)      (reset gate)
//   hh  = tanh(x_t Wh + (r_t .* h_{t-1}) Uh + bh)
//   h_t = (1 - z_t) .* h_{t-1} + z_t .* hh
// Always returns the full hidden sequence.
//
// Like LSTM, both passes run in the batched-GEMM formulation over
// time-major workspaces: one whole-sequence GEMM for X * Wx, two
// per-timestep GEMMs for the recurrent terms (the z/r block against
// h_{t-1}, the candidate block against r .* h_{t-1}), and
// whole-sequence slab GEMMs for the Wx/dX gradients in BPTT. The
// strided gemm_raw interface lets the z/r and candidate column blocks
// of the fused Wh matrix be updated in place.
#pragma once

#include "nn/layer.hpp"

namespace geonas::nn {

class GRU final : public Layer {
 public:
  GRU(std::size_t in_features, std::size_t units);

  Tensor3 forward(std::span<const Tensor3* const> inputs,
                  bool training) override;
  std::vector<Tensor3> backward(const Tensor3& grad_output) override;
  void init_params(Rng& rng) override;
  std::vector<Matrix*> parameters() override;
  std::vector<Matrix*> gradients() override;
  [[nodiscard]] std::string name() const override;

  [[nodiscard]] std::size_t units() const noexcept { return units_; }
  [[nodiscard]] std::size_t in_features() const noexcept { return in_; }

 private:
  std::size_t in_;
  std::size_t units_;

  Matrix wx_;  // in x 3*units, gate blocks [z | r | h]
  Matrix wh_;  // units x 3*units
  Matrix b_;   // 1 x 3*units
  Matrix wx_grad_;
  Matrix wh_grad_;
  Matrix b_grad_;

  // Time-major workspaces (row t*batch + b), reused across calls.
  Matrix x_tm_;     // [T*B, in]
  Matrix gates_;    // [T*B, 3*units] pre-activations, then [z, r, hh]
  Matrix h_seq_;    // [(T+1)*B, units], rows [0, B) are h_0 = 0
  Matrix rh_;       // [T*B, units] r_t .* h_{t-1} (candidate GEMM input)
  Matrix da_;       // [T*B, 3*units] gate pre-activation gradients
  Matrix dh_;       // [B, units] running dL/dh_{t-1}
  Matrix drh_;      // [B, units] dL/d(r .* h_{t-1})
  Matrix dx_tm_;    // [T*B, in]
  std::size_t fwd_batch_ = 0;
  std::size_t fwd_steps_ = 0;
};

}  // namespace geonas::nn
