#include "nn/optimizer.hpp"

#include <cmath>
#include <stdexcept>

namespace geonas::nn {

Optimizer::Optimizer(std::vector<Matrix*> params, std::vector<Matrix*> grads)
    : params_(std::move(params)), grads_(std::move(grads)) {
  if (params_.size() != grads_.size()) {
    throw std::invalid_argument("Optimizer: parameter/gradient list mismatch");
  }
  for (std::size_t i = 0; i < params_.size(); ++i) {
    if (params_[i] == nullptr || grads_[i] == nullptr ||
        params_[i]->rows() != grads_[i]->rows() ||
        params_[i]->cols() != grads_[i]->cols()) {
      throw std::invalid_argument("Optimizer: parameter/gradient shape clash");
    }
  }
}

SGD::SGD(std::vector<Matrix*> params, std::vector<Matrix*> grads,
         double learning_rate, double momentum)
    : Optimizer(std::move(params), std::move(grads)),
      lr_(learning_rate),
      momentum_(momentum) {
  if (momentum_ != 0.0) {
    velocity_.reserve(params_.size());
    for (const Matrix* p : params_) {
      velocity_.emplace_back(p->rows(), p->cols());
    }
  }
}

void SGD::step() {
  for (std::size_t i = 0; i < params_.size(); ++i) {
    auto pf = params_[i]->flat();
    const auto gf = grads_[i]->flat();
    if (momentum_ != 0.0) {
      auto vf = velocity_[i].flat();
      for (std::size_t k = 0; k < pf.size(); ++k) {
        vf[k] = momentum_ * vf[k] - lr_ * gf[k];
        pf[k] += vf[k];
      }
    } else {
      for (std::size_t k = 0; k < pf.size(); ++k) pf[k] -= lr_ * gf[k];
    }
  }
}

Adam::Adam(std::vector<Matrix*> params, std::vector<Matrix*> grads,
           Config config)
    : Optimizer(std::move(params), std::move(grads)), cfg_(config) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const Matrix* p : params_) {
    m_.emplace_back(p->rows(), p->cols());
    v_.emplace_back(p->rows(), p->cols());
  }
}

void Adam::step() {
  ++t_;
  const double bias1 = 1.0 - std::pow(cfg_.beta1, static_cast<double>(t_));
  const double bias2 = 1.0 - std::pow(cfg_.beta2, static_cast<double>(t_));
  for (std::size_t i = 0; i < params_.size(); ++i) {
    auto pf = params_[i]->flat();
    const auto gf = grads_[i]->flat();
    auto mf = m_[i].flat();
    auto vf = v_[i].flat();
    for (std::size_t k = 0; k < pf.size(); ++k) {
      mf[k] = cfg_.beta1 * mf[k] + (1.0 - cfg_.beta1) * gf[k];
      vf[k] = cfg_.beta2 * vf[k] + (1.0 - cfg_.beta2) * gf[k] * gf[k];
      const double mhat = mf[k] / bias1;
      const double vhat = vf[k] / bias2;
      pf[k] -= cfg_.learning_rate *
               (mhat / (std::sqrt(vhat) + cfg_.epsilon) +
                cfg_.weight_decay * pf[k]);
    }
  }
}

double clip_gradients_by_norm(const std::vector<Matrix*>& grads,
                              double max_norm) {
  double sq = 0.0;
  for (const Matrix* g : grads) {
    for (double v : g->flat()) sq += v * v;
  }
  const double norm = std::sqrt(sq);
  if (norm > max_norm && norm > 0.0) {
    const double scale = max_norm / norm;
    for (Matrix* g : grads) {
      for (double& v : g->flat()) v *= scale;
    }
  }
  return norm;
}

}  // namespace geonas::nn
