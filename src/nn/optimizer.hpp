// First-order optimizers.
//
// Adam (Kingma & Ba) with the paper's hyperparameters (lr = 0.001) is the
// training optimizer; plain SGD is kept for tests and the PPO policy
// updates. Optimizers bind to a parameter/gradient list once and keep
// per-parameter state (Adam moments) across steps.
#pragma once

#include <vector>

#include "tensor/matrix.hpp"

namespace geonas::nn {

class Optimizer {
 public:
  virtual ~Optimizer() = default;
  /// Applies one update using the bound gradients. Call after backward().
  virtual void step() = 0;

 protected:
  Optimizer(std::vector<Matrix*> params, std::vector<Matrix*> grads);

  std::vector<Matrix*> params_;
  std::vector<Matrix*> grads_;
};

class SGD final : public Optimizer {
 public:
  SGD(std::vector<Matrix*> params, std::vector<Matrix*> grads,
      double learning_rate, double momentum = 0.0);
  void step() override;

 private:
  double lr_;
  double momentum_;
  std::vector<Matrix> velocity_;
};

class Adam final : public Optimizer {
 public:
  struct Config {
    double learning_rate = 1e-3;
    double beta1 = 0.9;
    double beta2 = 0.999;
    double epsilon = 1e-8;
    /// Decoupled (AdamW) weight decay per step; 0 disables.
    double weight_decay = 0.0;
  };

  Adam(std::vector<Matrix*> params, std::vector<Matrix*> grads,
       Config config);
  Adam(std::vector<Matrix*> params, std::vector<Matrix*> grads)
      : Adam(std::move(params), std::move(grads), Config{}) {}
  void step() override;
  void set_learning_rate(double lr) noexcept { cfg_.learning_rate = lr; }
  [[nodiscard]] double learning_rate() const noexcept {
    return cfg_.learning_rate;
  }

 private:
  Config cfg_;
  long t_ = 0;
  std::vector<Matrix> m_;
  std::vector<Matrix> v_;
};

/// Global-norm gradient clipping; returns the pre-clip norm. Takes the
/// list by reference so per-batch callers can reuse one gradient vector
/// (copying it every step put an allocation on the training hot path).
double clip_gradients_by_norm(const std::vector<Matrix*>& grads,
                              double max_norm);

}  // namespace geonas::nn
