// Losses and sequence metrics.
//
// Training uses mean squared error (paper §IV); validation quality is the
// coefficient of determination R^2, which is also the NAS reward.
#pragma once

#include "tensor/matrix.hpp"

namespace geonas::nn {

/// MSE over all elements of the batched sequence tensors.
[[nodiscard]] double mse_loss(const Tensor3& truth, const Tensor3& predicted);

/// Gradient of mse_loss with respect to `predicted`:
/// 2 * (pred - truth) / N where N is the total element count.
[[nodiscard]] Tensor3 mse_grad(const Tensor3& truth, const Tensor3& predicted);

/// In-place variant: writes the MSE gradient into `grad` (resized to match;
/// no allocation once its capacity covers the batch shape).
void mse_grad_into(const Tensor3& truth, const Tensor3& predicted,
                   Tensor3& grad);

/// R^2 over all elements (flattened).
[[nodiscard]] double r2_metric(const Tensor3& truth, const Tensor3& predicted);

}  // namespace geonas::nn
