#include "nn/trainer.hpp"

#include <algorithm>
#include <limits>
#include <numeric>
#include <stdexcept>

#include "hpc/parallel_for.hpp"
#include "nn/loss.hpp"
#include "nn/optimizer.hpp"
#include "obs/metrics.hpp"
#include "tensor/random.hpp"

namespace geonas::nn {

double TrainHistory::best_val_r2() const {
  if (val_r2.empty()) return -std::numeric_limits<double>::infinity();
  return *std::max_element(val_r2.begin(), val_r2.end());
}

Tensor3 gather_examples(const Tensor3& data,
                        std::span<const std::size_t> indices) {
  Tensor3 out(indices.size(), data.dim1(), data.dim2());
  for (std::size_t i = 0; i < indices.size(); ++i) {
    const auto src = data.block(indices[i]);
    auto dst = out.block(i);
    std::copy(src.begin(), src.end(), dst.begin());
  }
  return out;
}

std::vector<std::size_t> lr_decay_epochs(std::size_t epochs) {
  std::vector<std::size_t> steps;
  for (const std::size_t step : {epochs / 2, epochs * 3 / 4}) {
    if (step == 0) continue;  // never decay before any full-rate epoch
    if (steps.empty() || steps.back() != step) steps.push_back(step);
  }
  return steps;
}

namespace {

/// Gathers the examples at `idx` into persistent batch buffers (resized in
/// place; allocation-free once their capacity covers the batch shape).
void gather_batch(const ExampleSource& src, std::span<const std::size_t> idx,
                  Tensor3& xb, Tensor3& yb) {
  xb.ensure_shape(idx.size(), src.x_steps(), src.x_features());
  yb.ensure_shape(idx.size(), src.y_steps(), src.y_features());
  for (std::size_t i = 0; i < idx.size(); ++i) {
    src.gather_x(idx[i], xb.block(i));
    src.gather_y(idx[i], yb.block(i));
  }
}

}  // namespace

void predict_into(GraphNetwork& net, const ExampleSource& src, Tensor3& out,
                  Tensor3& x_scratch, std::size_t batch_size) {
  const std::size_t n = src.size();
  if (n == 0) {
    out = {};
    return;
  }
  batch_size = std::max<std::size_t>(1, batch_size);
  bool first = true;
  for (std::size_t start = 0; start < n; start += batch_size) {
    const std::size_t end = std::min(start + batch_size, n);
    x_scratch.ensure_shape(end - start, src.x_steps(), src.x_features());
    for (std::size_t i = 0; i < end - start; ++i) {
      src.gather_x(start + i, x_scratch.block(i));
    }
    const Tensor3& pb = net.forward_ref(x_scratch, /*training=*/false);
    if (first) {
      out.ensure_shape(n, pb.dim1(), pb.dim2());
      first = false;
    }
    for (std::size_t i = 0; i < pb.dim0(); ++i) {
      const auto sb = pb.block(i);
      auto db = out.block(start + i);
      std::copy(sb.begin(), sb.end(), db.begin());
    }
  }
}

TrainHistory Trainer::fit(GraphNetwork& net, const ExampleSource& train,
                          const ExampleSource* val) const {
  const std::size_t n = train.size();
  if (n == 0) {
    throw std::invalid_argument("Trainer::fit: bad training example count");
  }
  if (val != nullptr && val->size() == 0) val = nullptr;
  const std::size_t bs = std::max<std::size_t>(1, cfg_.batch_size);
  if (cfg_.kernel_threads != 0) {
    hpc::set_kernel_threads(cfg_.kernel_threads);
  }

  Adam optimizer(net.parameters(), net.gradients(),
                 {.learning_rate = cfg_.learning_rate,
                  .weight_decay = cfg_.weight_decay});
  // Hoisted: net.gradients() builds a fresh vector per call, which must
  // not happen once per batch.
  const std::vector<Matrix*> grad_list = net.gradients();
  Rng rng(cfg_.seed);
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});

  // Persistent step buffers: sized on the first batch, reused afterwards.
  // The graph's own workspaces live in its arena; these cover everything
  // the trainer feeds it, so the steady-state step never touches the heap.
  Tensor3 xb, yb, grad;
  Tensor3 val_pred, val_scratch, y_val;
  if (val != nullptr) {
    y_val.ensure_shape(val->size(), val->y_steps(), val->y_features());
    for (std::size_t e = 0; e < val->size(); ++e) {
      val->gather_y(e, y_val.block(e));
    }
  }

  const std::vector<std::size_t> decay_epochs = lr_decay_epochs(cfg_.epochs);
  // Telemetry: per-epoch forward/backward/update wall time, LR, and loss
  // curves. `timed` gates every clock read so a disabled registry costs
  // one null check per fit. Histograms/series are looked up per epoch
  // (not per batch) to keep the enabled path cheap too.
  obs::MetricsRegistry* reg = obs::registry();
  const obs::ScopedTimer fit_span(reg, "trainer.fit");
  const bool timed = reg != nullptr;
  obs::StopWatch lap;
  TrainHistory history;
  for (std::size_t epoch = 0; epoch < cfg_.epochs; ++epoch) {
    const obs::ScopedTimer epoch_span(reg, "trainer.epoch");
    if (cfg_.lr_step_decay != 1.0 &&
        std::find(decay_epochs.begin(), decay_epochs.end(), epoch) !=
            decay_epochs.end()) {
      optimizer.set_learning_rate(optimizer.learning_rate() *
                                  cfg_.lr_step_decay);
    }
    if (cfg_.shuffle) rng.shuffle(std::span<std::size_t>(order));
    double epoch_loss = 0.0;
    double fwd_seconds = 0.0, bwd_seconds = 0.0, opt_seconds = 0.0;
    for (std::size_t start = 0; start < n; start += bs) {
      const std::size_t end = std::min(start + bs, n);
      const std::span<const std::size_t> idx(order.data() + start, end - start);
      gather_batch(train, idx, xb, yb);

      net.zero_grad();
      if (timed) lap.reset();
      const Tensor3& pred = net.forward_ref(xb, /*training=*/true);
      if (timed) fwd_seconds += lap.lap();
      // mse_loss is a per-element mean; weight each batch by its example
      // count so a short final batch does not skew the epoch average.
      epoch_loss += mse_loss(yb, pred) * static_cast<double>(end - start);
      if (timed) lap.reset();
      mse_grad_into(yb, pred, grad);
      net.backward_ref(grad);
      if (cfg_.grad_clip_norm > 0.0) {
        clip_gradients_by_norm(grad_list, cfg_.grad_clip_norm);
      }
      if (timed) bwd_seconds += lap.lap();
      optimizer.step();
      // Eager re-pack of the weight panels the step just invalidated, so
      // the next forward (or a serve freeze) starts warm; counted as
      // update time since it is part of applying the step.
      net.repack_weights();
      if (timed) opt_seconds += lap.lap();
    }
    history.train_loss.push_back(epoch_loss / static_cast<double>(n));

    if (val != nullptr) {
      predict_into(net, *val, val_pred, val_scratch);
      history.val_loss.push_back(mse_loss(y_val, val_pred));
      history.val_r2.push_back(r2_metric(y_val, val_pred));
    }
    if (timed) {
      const auto e = static_cast<double>(epoch);
      reg->counter("trainer.epochs").add(1);
      reg->histogram("trainer.forward_seconds").observe(fwd_seconds);
      reg->histogram("trainer.backward_seconds").observe(bwd_seconds);
      reg->histogram("trainer.update_seconds").observe(opt_seconds);
      reg->gauge("trainer.learning_rate").set(optimizer.learning_rate());
      reg->series("trainer.train_loss").append(e, history.train_loss.back());
      if (!history.val_loss.empty()) {
        reg->series("trainer.val_loss").append(e, history.val_loss.back());
        reg->series("trainer.val_r2").append(e, history.val_r2.back());
      }
    }
  }
  return history;
}

TrainHistory Trainer::fit(GraphNetwork& net, const Tensor3& x,
                          const Tensor3& y, const Tensor3& x_val,
                          const Tensor3& y_val) const {
  if (x.dim0() == 0 || x.dim0() != y.dim0()) {
    throw std::invalid_argument("Trainer::fit: bad training example count");
  }
  if (x_val.dim0() != y_val.dim0()) {
    throw std::invalid_argument("Trainer::fit: bad validation example count");
  }
  const TensorPairSource train(x, y);
  if (x_val.dim0() == 0) return fit(net, train, nullptr);
  const TensorPairSource val(x_val, y_val);
  return fit(net, train, &val);
}

Tensor3 Trainer::predict(GraphNetwork& net, const Tensor3& x,
                         std::size_t batch_size) {
  if (x.dim0() == 0) return {};
  const TensorPairSource src(x, x);
  Tensor3 out, scratch;
  predict_into(net, src, out, scratch, batch_size);
  return out;
}

}  // namespace geonas::nn
