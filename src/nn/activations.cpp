#include "nn/activations.hpp"

#include <stdexcept>

#include "tensor/vmath.hpp"

namespace geonas::nn {

const char* activation_name(Activation a) noexcept {
  switch (a) {
    case Activation::kIdentity: return "identity";
    case Activation::kReLU: return "relu";
    case Activation::kTanh: return "tanh";
    case Activation::kSigmoid: return "sigmoid";
  }
  return "unknown";
}

void apply_activation(Activation a, std::span<double> x) {
  switch (a) {
    case Activation::kReLU:
      for (double& v : x) v = relu(v);
      break;
    case Activation::kTanh:
      tensor::vtanh(x, x);
      break;
    case Activation::kSigmoid:
      tensor::vsigmoid(x, x);
      break;
    case Activation::kIdentity:
      break;
  }
}

void activation_grad_mul(Activation a, std::span<double> dz,
                         std::span<const double> pre,
                         std::span<const double> post) {
  if (dz.size() != pre.size() || dz.size() != post.size()) {
    throw std::invalid_argument("activation_grad_mul: span size mismatch");
  }
  switch (a) {
    case Activation::kReLU:
      for (std::size_t i = 0; i < dz.size(); ++i) {
        dz[i] *= relu_grad_from_input(pre[i]);
      }
      break;
    case Activation::kTanh:
      for (std::size_t i = 0; i < dz.size(); ++i) {
        dz[i] *= tanh_grad_from_value(post[i]);
      }
      break;
    case Activation::kSigmoid:
      for (std::size_t i = 0; i < dz.size(); ++i) {
        dz[i] *= sigmoid_grad_from_value(post[i]);
      }
      break;
    case Activation::kIdentity:
      break;
  }
}

}  // namespace geonas::nn
