#include "nn/activations.hpp"

namespace geonas::nn {

const char* activation_name(Activation a) noexcept {
  switch (a) {
    case Activation::kIdentity: return "identity";
    case Activation::kReLU: return "relu";
    case Activation::kTanh: return "tanh";
    case Activation::kSigmoid: return "sigmoid";
  }
  return "unknown";
}

}  // namespace geonas::nn
