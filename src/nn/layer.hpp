// Layer interface for the geonas neural-network library.
//
// Layers operate on batched sequences stored as Tensor3 [batch, time,
// features] and implement explicit forward/backward passes (no tape
// autodiff): each layer caches whatever activations its backward pass
// needs during forward(). A layer therefore supports exactly one
// outstanding forward-then-backward pair at a time, which is all the
// mini-batch trainer requires.
//
// Multi-input layers (the skip-connection sum of paper §III-A) take all
// their inputs at once and return one gradient per input from backward().
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "tensor/matrix.hpp"
#include "tensor/random.hpp"

namespace geonas::nn {

class Layer {
 public:
  virtual ~Layer() = default;

  Layer(const Layer&) = delete;
  Layer& operator=(const Layer&) = delete;

  /// Number of inputs this layer consumes (1 for all but merge layers).
  [[nodiscard]] virtual std::size_t arity() const { return 1; }

  /// Forward pass. `inputs.size()` must equal arity() (merge layers accept
  /// any count >= 1). Caches activations for backward when `training`.
  virtual Tensor3 forward(std::span<const Tensor3* const> inputs,
                          bool training) = 0;

  /// Backward pass for the most recent training-mode forward. Returns one
  /// gradient tensor per input, in the same order. Accumulates parameter
  /// gradients (callers zero_grad() between batches).
  virtual std::vector<Tensor3> backward(const Tensor3& grad_output) = 0;

  /// Randomly (re-)initialize parameters.
  virtual void init_params(Rng& /*rng*/) {}

  /// Mutable views of parameters and their accumulated gradients; the two
  /// lists are parallel.
  virtual std::vector<Matrix*> parameters() { return {}; }
  virtual std::vector<Matrix*> gradients() { return {}; }

  void zero_grad() {
    for (Matrix* g : gradients()) g->fill(0.0);
  }

  [[nodiscard]] std::size_t param_count() {
    std::size_t n = 0;
    for (const Matrix* p : parameters()) n += p->size();
    return n;
  }

  /// Human-readable layer description, e.g. "LSTM(96)".
  [[nodiscard]] virtual std::string name() const = 0;

 protected:
  Layer() = default;
};

/// Convenience for single-input layers.
inline const Tensor3& single_input(std::span<const Tensor3* const> inputs,
                                   const char* layer_name) {
  if (inputs.size() != 1 || inputs[0] == nullptr) {
    throw std::invalid_argument(std::string(layer_name) +
                                ": expected exactly one input");
  }
  return *inputs[0];
}

}  // namespace geonas::nn
