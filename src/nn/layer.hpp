// Layer interface for the geonas neural-network library.
//
// Layers operate on batched sequences stored as Tensor3 [batch, time,
// features] and implement explicit forward/backward passes (no tape
// autodiff): each layer caches whatever activations its backward pass
// needs during forward_into(). A layer therefore supports exactly one
// outstanding forward-then-backward pair at a time, which is all the
// mini-batch trainer requires.
//
// Hot-path contract (see DESIGN.md, "Memory model"): the core entry
// points are forward_into / backward_into, which write into
// caller-provided tensors, and bind_workspace, which carves all of a
// layer's scratch out of a tensor::Arena for a fixed (batch, steps,
// features) shape. A bound layer performs ZERO heap allocation in
// forward_into/backward_into. Inputs passed to a training forward_into
// must stay alive and unmodified until the matching backward_into
// returns — layers cache input POINTERS instead of copying.
//
// The by-value forward()/backward() convenience wrappers keep the old
// allocating call style for tests and examples; standalone layers
// (outside a GraphNetwork) self-bind on a private arena at first use.
//
// Multi-input layers (the skip-connection sum of paper §III-A) take all
// their inputs at once and fill one gradient per input in backward_into.
#pragma once

#include <array>
#include <cstddef>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "tensor/arena.hpp"
#include "tensor/matrix.hpp"
#include "tensor/prepack.hpp"
#include "tensor/random.hpp"

namespace geonas::nn {

class Layer {
 public:
  virtual ~Layer() = default;

  Layer(const Layer&) = delete;
  Layer& operator=(const Layer&) = delete;

  /// Number of inputs this layer consumes (1 for all but merge layers).
  [[nodiscard]] virtual std::size_t arity() const { return 1; }

  /// Feature width of this layer's output for `in_features`-wide inputs.
  [[nodiscard]] virtual std::size_t output_features(
      std::size_t in_features) const {
    return in_features;
  }

  /// Carves every workspace this layer needs for shape (batch, steps,
  /// in_features) out of `arena`. GraphNetwork rebinds all its layers on
  /// one shared arena whenever the batch shape changes; standalone
  /// layers self-bind lazily. Default: stateless layer, nothing to bind.
  virtual void bind_workspace(tensor::Arena& /*arena*/, std::size_t /*batch*/,
                              std::size_t /*steps*/,
                              std::size_t /*in_features*/) {}

  /// Forward pass into `out`, pre-shaped by the caller to
  /// [batch, steps, output_features(in_features)]. `inputs.size()` must
  /// equal arity(). Caches activations (by pointer where possible) for
  /// backward when `training`.
  virtual void forward_into(std::span<const Tensor3* const> inputs,
                            Tensor3& out, bool training) = 0;

  /// Backward pass for the most recent training-mode forward. Writes one
  /// gradient per input into `input_grads` (pre-shaped to the matching
  /// input shapes; every element is fully overwritten). Accumulates
  /// parameter gradients (callers zero_grad() between batches).
  virtual void backward_into(const Tensor3& grad_output,
                             std::span<Tensor3* const> input_grads) = 0;

  /// Allocating convenience wrapper around forward_into.
  Tensor3 forward(std::span<const Tensor3* const> inputs, bool training) {
    wrapper_in_shapes_.clear();
    for (const Tensor3* in : inputs) {
      if (in != nullptr) {
        wrapper_in_shapes_.push_back({in->dim0(), in->dim1(), in->dim2()});
      } else {
        wrapper_in_shapes_.push_back({0, 0, 0});
      }
    }
    Tensor3 out;
    if (!inputs.empty() && inputs[0] != nullptr) {
      const Tensor3& x = *inputs[0];
      out.ensure_shape(x.dim0(), x.dim1(), output_features(x.dim2()));
    }
    forward_into(inputs, out, training);
    return out;
  }

  /// Allocating convenience wrapper around backward_into; shapes come
  /// from the most recent wrapper forward().
  std::vector<Tensor3> backward(const Tensor3& grad_output) {
    std::vector<Tensor3> grads(wrapper_in_shapes_.size());
    std::vector<Tensor3*> ptrs(grads.size());
    for (std::size_t i = 0; i < grads.size(); ++i) {
      const auto& s = wrapper_in_shapes_[i];
      grads[i].ensure_shape(s[0], s[1], s[2]);
      ptrs[i] = &grads[i];
    }
    backward_into(grad_output, ptrs);
    return grads;
  }

  /// Randomly (re-)initialize parameters.
  virtual void init_params(Rng& /*rng*/) {}

  /// Re-packs any prepacked weight panels (tensor::PackedPanels) against
  /// the current parameter values. The trainer calls this right after
  /// each optimizer step so the next forward starts with warm panels;
  /// layers ALSO lazily re-validate before every use (the Matrix
  /// version() counter makes stale panels structurally impossible), so
  /// skipping this call costs latency, never correctness. Default:
  /// layer has no packed weights.
  virtual void repack_weights() {}

  /// Mutable views of parameters and their accumulated gradients; the two
  /// lists are parallel.
  virtual std::vector<Matrix*> parameters() { return {}; }
  virtual std::vector<Matrix*> gradients() { return {}; }

  void zero_grad() {
    for (Matrix* g : gradients()) g->fill(0.0);
  }

  [[nodiscard]] std::size_t param_count() {
    std::size_t n = 0;
    for (const Matrix* p : parameters()) n += p->size();
    return n;
  }

  /// Human-readable layer description, e.g. "LSTM(96)".
  [[nodiscard]] virtual std::string name() const = 0;

 protected:
  Layer() = default;

  /// Private arena for standalone (non-graph) use, created on demand and
  /// reset before each rebind so repeat shapes reuse its slabs.
  tensor::Arena& self_arena() {
    if (!own_arena_) own_arena_ = std::make_unique<tensor::Arena>();
    own_arena_->reset();
    return *own_arena_;
  }

 private:
  std::unique_ptr<tensor::Arena> own_arena_;
  std::vector<std::array<std::size_t, 3>> wrapper_in_shapes_;
};

/// Convenience for single-input layers.
inline const Tensor3& single_input(std::span<const Tensor3* const> inputs,
                                   const char* layer_name) {
  if (inputs.size() != 1 || inputs[0] == nullptr) {
    throw std::invalid_argument(std::string(layer_name) +
                                ": expected exactly one input");
  }
  return *inputs[0];
}

}  // namespace geonas::nn
