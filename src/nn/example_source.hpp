// ExampleSource: the trainer's view of a training/validation set.
//
// The trainer never materializes the full example tensor pair; it asks a
// source to gather one example at a time into a caller-owned buffer. This
// is what makes zero-copy windowing possible: data::WindowView-backed
// sources (see core/window_source.hpp) gather strided columns straight
// out of the POD coefficient matrix, while TensorPairSource adapts the
// classic pre-materialized [N, T, F] tensor pair. Gather targets are
// contiguous [T, F] example blocks, so implementations must write exactly
// x_steps()*x_features() (resp. y) doubles and may not allocate.
#pragma once

#include <cstddef>
#include <span>
#include <stdexcept>

#include "tensor/matrix.hpp"

namespace geonas::nn {

class ExampleSource {
 public:
  virtual ~ExampleSource() = default;

  /// Number of examples.
  [[nodiscard]] virtual std::size_t size() const = 0;
  [[nodiscard]] virtual std::size_t x_steps() const = 0;
  [[nodiscard]] virtual std::size_t y_steps() const = 0;
  [[nodiscard]] virtual std::size_t x_features() const = 0;
  [[nodiscard]] virtual std::size_t y_features() const = 0;

  /// Writes example `e`'s input as a row-major [x_steps, x_features]
  /// block into `dst` (which has exactly that many elements).
  virtual void gather_x(std::size_t e, std::span<double> dst) const = 0;
  /// Same for the target block.
  virtual void gather_y(std::size_t e, std::span<double> dst) const = 0;
};

/// Adapts a pre-materialized (x, y) tensor pair. Non-owning: both tensors
/// must outlive the source.
class TensorPairSource final : public ExampleSource {
 public:
  TensorPairSource(const Tensor3& x, const Tensor3& y) : x_(&x), y_(&y) {
    if (x.dim0() != y.dim0()) {
      throw std::invalid_argument(
          "TensorPairSource: x/y example counts differ");
    }
  }

  [[nodiscard]] std::size_t size() const override { return x_->dim0(); }
  [[nodiscard]] std::size_t x_steps() const override { return x_->dim1(); }
  [[nodiscard]] std::size_t y_steps() const override { return y_->dim1(); }
  [[nodiscard]] std::size_t x_features() const override { return x_->dim2(); }
  [[nodiscard]] std::size_t y_features() const override { return y_->dim2(); }

  void gather_x(std::size_t e, std::span<double> dst) const override {
    const auto src = x_->block(e);
    for (std::size_t i = 0; i < src.size(); ++i) dst[i] = src[i];
  }
  void gather_y(std::size_t e, std::span<double> dst) const override {
    const auto src = y_->block(e);
    for (std::size_t i = 0; i < src.size(); ++i) dst[i] = src[i];
  }

 private:
  const Tensor3* x_;
  const Tensor3* y_;
};

}  // namespace geonas::nn
