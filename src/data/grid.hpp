// Lat/lon grid geometry for the (synthetic) NOAA OI SST field.
//
// The paper's data lives on a one-degree 360 x 180 grid. Our generator is
// resolution-independent: any nlat x nlon grid covers the same physical
// domain (latitude -90..90, longitude 0..360, cell-centered), so the
// default experiment scale can use a coarser grid while GEONAS_SCALE=full
// reproduces the paper's resolution with identical large-scale structure.
#pragma once

#include <cstddef>
#include <vector>

namespace geonas::data {

struct Grid {
  std::size_t nlat = 180;
  std::size_t nlon = 360;

  /// Latitude of the cell-center at row i, in degrees [-90+d/2, 90-d/2].
  [[nodiscard]] double lat_of(std::size_t i) const noexcept {
    const double step = 180.0 / static_cast<double>(nlat);
    return -90.0 + (static_cast<double>(i) + 0.5) * step;
  }
  /// Longitude of the cell-center at column j, in degrees [d/2, 360-d/2].
  [[nodiscard]] double lon_of(std::size_t j) const noexcept {
    const double step = 360.0 / static_cast<double>(nlon);
    return (static_cast<double>(j) + 0.5) * step;
  }

  /// Row index of the cell containing latitude `lat` (clamped).
  [[nodiscard]] std::size_t row_of_lat(double lat) const noexcept;
  /// Column index of the cell containing longitude `lon` in [0, 360).
  [[nodiscard]] std::size_t col_of_lon(double lon) const noexcept;

  [[nodiscard]] std::size_t cells() const noexcept { return nlat * nlon; }
  [[nodiscard]] std::size_t index(std::size_t i, std::size_t j) const noexcept {
    return i * nlon + j;
  }

  /// The paper's native resolution.
  [[nodiscard]] static Grid paper() noexcept { return {180, 360}; }
  /// Default reduced scale for single-node experiment runs (4-degree).
  [[nodiscard]] static Grid reduced() noexcept { return {45, 90}; }
};

/// Inclusive geographic box; longitudes in [0, 360).
struct Region {
  double lat_min, lat_max;
  double lon_min, lon_max;

  [[nodiscard]] bool contains(double lat, double lon) const noexcept {
    return lat >= lat_min && lat <= lat_max && lon >= lon_min && lon <= lon_max;
  }

  /// The paper's Table I assessment region: Eastern Pacific,
  /// -10..+10 latitude, 200..250 longitude.
  [[nodiscard]] static Region eastern_pacific() noexcept {
    return {-10.0, 10.0, 200.0, 250.0};
  }
};

/// Grid cell indices (flattened, full grid) inside a region.
[[nodiscard]] std::vector<std::size_t> cells_in_region(const Grid& grid,
                                                       const Region& region);

}  // namespace geonas::data
