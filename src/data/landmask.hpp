// Procedural land/ocean mask.
//
// The NOAA record masks out land cells before flattening each snapshot to
// an RZ-dimensional ocean vector (paper §II-A). Our mask is a smooth,
// seed-deterministic "elevation" field (a fixed bank of low-frequency
// spherical harmonics) thresholded to a target land fraction, plus a polar
// Antarctic cap — continent-like blobs at any grid resolution, with the
// same coastline at every resolution for a given seed.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "data/grid.hpp"

namespace geonas::data {

class LandMask {
 public:
  /// Builds a mask with approximately `land_fraction` of cells on land.
  explicit LandMask(const Grid& grid, std::uint64_t seed = 7,
                    double land_fraction = 0.30);

  [[nodiscard]] const Grid& grid() const noexcept { return grid_; }
  [[nodiscard]] bool is_land(std::size_t ilat, std::size_t ilon) const noexcept {
    return land_[grid_.index(ilat, ilon)] != 0;
  }
  [[nodiscard]] bool is_land_cell(std::size_t cell) const noexcept {
    return land_[cell] != 0;
  }

  /// Number of ocean cells Nh (the flattened snapshot dimension).
  [[nodiscard]] std::size_t ocean_count() const noexcept {
    return ocean_cells_.size();
  }
  [[nodiscard]] std::size_t land_count() const noexcept {
    return grid_.cells() - ocean_cells_.size();
  }
  /// Flattened full-grid indices of the ocean cells, ascending.
  [[nodiscard]] const std::vector<std::size_t>& ocean_cells() const noexcept {
    return ocean_cells_;
  }

  /// Extracts the ocean cells of a full-grid field into an Nh-vector.
  [[nodiscard]] std::vector<double> flatten(
      std::span<const double> full_field) const;

  /// Scatters an Nh-vector back onto the full grid; land cells get
  /// `land_fill`.
  [[nodiscard]] std::vector<double> unflatten(
      std::span<const double> ocean_field, double land_fill = 0.0) const;

  /// Positions within the flattened ocean vector of the ocean cells lying
  /// inside `region` (used for Eastern-Pacific RMSE in Table I).
  [[nodiscard]] std::vector<std::size_t> ocean_positions_in_region(
      const Region& region) const;

 private:
  Grid grid_;
  std::vector<std::uint8_t> land_;
  std::vector<std::size_t> ocean_cells_;
};

}  // namespace geonas::data
