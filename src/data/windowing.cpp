#include "data/windowing.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "tensor/random.hpp"

namespace geonas::data {

std::size_t window_count(std::size_t ns, const WindowConfig& config) {
  if (config.stride == 0) {
    // A zero stride would make make_windows emit N identical windows all
    // starting at 0 (it multiplies by the raw stride); silently treating
    // it as 1 here made the two functions disagree. Reject it outright.
    throw std::invalid_argument("window_count: stride must be >= 1");
  }
  const std::size_t width = 2 * config.window;
  if (ns < width || config.window == 0) return 0;
  return (ns - width) / config.stride + 1;
}

WindowView::WindowView(const Matrix& coefficients, const WindowConfig& config)
    : coefficients_(&coefficients),
      config_(config),
      count_(window_count(coefficients.cols(), config)) {
  if (count_ == 0) {
    throw std::invalid_argument(
        "make_windows: series shorter than one 2K window");
  }
}

void WindowView::gather(std::size_t first_col, std::span<double> dst) const {
  const Matrix& a = *coefficients_;
  const std::size_t nr = a.rows();
  for (std::size_t t = 0; t < config_.window; ++t) {
    for (std::size_t m = 0; m < nr; ++m) {
      dst[t * nr + m] = a(m, first_col + t);
    }
  }
}

void WindowView::gather_x(std::size_t e, std::span<double> dst) const {
  gather(e * config_.stride, dst);
}

void WindowView::gather_y(std::size_t e, std::span<double> dst) const {
  gather(e * config_.stride + config_.window, dst);
}

WindowedDataset WindowView::materialize() const {
  const std::size_t nr = features();
  const std::size_t k = config_.window;
  WindowedDataset out{Tensor3(count_, k, nr), Tensor3(count_, k, nr)};
  for (std::size_t e = 0; e < count_; ++e) {
    gather_x(e, out.x.block(e));
    gather_y(e, out.y.block(e));
  }
  return out;
}

WindowedDataset make_windows(const Matrix& coefficients,
                             const WindowConfig& config) {
  return WindowView(coefficients, config).materialize();
}

SplitIndices train_val_split_indices(std::size_t n, double train_fraction,
                                     std::uint64_t seed) {
  if (train_fraction <= 0.0 || train_fraction >= 1.0) {
    // 1.0 used to be accepted and rounded to an empty validation set,
    // which downstream evaluation divides by. Both splits must be
    // non-empty, so the fraction is strictly interior.
    throw std::invalid_argument(
        "train_val_split: train_fraction must be in (0, 1); both splits "
        "must be non-empty");
  }
  if (n < 2) {
    throw std::invalid_argument(
        "train_val_split: need at least 2 windows to form non-empty "
        "train and validation splits");
  }
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  Rng rng(seed);
  rng.shuffle(std::span<std::size_t>(order));

  // Round, then clamp so extreme-but-valid fractions (e.g. 0.99 at small
  // n) still leave at least one example on each side.
  const auto rounded = static_cast<std::size_t>(
      train_fraction * static_cast<double>(n) + 0.5);
  const std::size_t n_train = std::clamp<std::size_t>(rounded, 1, n - 1);

  SplitIndices split;
  split.train.assign(order.begin(),
                     order.begin() + static_cast<std::ptrdiff_t>(n_train));
  split.val.assign(order.begin() + static_cast<std::ptrdiff_t>(n_train),
                   order.end());
  return split;
}

SplitDataset train_val_split(const WindowedDataset& data,
                             double train_fraction, std::uint64_t seed) {
  const SplitIndices idx =
      train_val_split_indices(data.size(), train_fraction, seed);
  const std::size_t k = data.x.dim1();
  const std::size_t nr = data.x.dim2();

  SplitDataset split;
  split.train.x = Tensor3(idx.train.size(), k, nr);
  split.train.y = Tensor3(idx.train.size(), k, nr);
  split.val.x = Tensor3(idx.val.size(), k, nr);
  split.val.y = Tensor3(idx.val.size(), k, nr);
  const auto copy_block = [](const Tensor3& src_t, std::size_t src,
                             Tensor3& dst_t, std::size_t dst) {
    const auto sb = src_t.block(src);
    auto db = dst_t.block(dst);
    std::copy(sb.begin(), sb.end(), db.begin());
  };
  for (std::size_t i = 0; i < idx.train.size(); ++i) {
    copy_block(data.x, idx.train[i], split.train.x, i);
    copy_block(data.y, idx.train[i], split.train.y, i);
  }
  for (std::size_t i = 0; i < idx.val.size(); ++i) {
    copy_block(data.x, idx.val[i], split.val.x, i);
    copy_block(data.y, idx.val[i], split.val.y, i);
  }
  return split;
}

}  // namespace geonas::data
