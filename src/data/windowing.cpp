#include "data/windowing.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "tensor/random.hpp"

namespace geonas::data {

std::size_t window_count(std::size_t ns, const WindowConfig& config) {
  if (config.stride == 0) {
    // A zero stride would make make_windows emit N identical windows all
    // starting at 0 (it multiplies by the raw stride); silently treating
    // it as 1 here made the two functions disagree. Reject it outright.
    throw std::invalid_argument("window_count: stride must be >= 1");
  }
  const std::size_t width = 2 * config.window;
  if (ns < width || config.window == 0) return 0;
  return (ns - width) / config.stride + 1;
}

WindowedDataset make_windows(const Matrix& coefficients,
                             const WindowConfig& config) {
  const std::size_t nr = coefficients.rows();
  const std::size_t ns = coefficients.cols();
  const std::size_t k = config.window;
  const std::size_t n = window_count(ns, config);
  if (n == 0) {
    throw std::invalid_argument(
        "make_windows: series shorter than one 2K window");
  }
  WindowedDataset out{Tensor3(n, k, nr), Tensor3(n, k, nr)};
  for (std::size_t e = 0; e < n; ++e) {
    const std::size_t start = e * config.stride;
    for (std::size_t t = 0; t < k; ++t) {
      for (std::size_t m = 0; m < nr; ++m) {
        out.x(e, t, m) = coefficients(m, start + t);
        out.y(e, t, m) = coefficients(m, start + k + t);
      }
    }
  }
  return out;
}

SplitDataset train_val_split(const WindowedDataset& data,
                             double train_fraction, std::uint64_t seed) {
  if (train_fraction <= 0.0 || train_fraction >= 1.0) {
    // 1.0 used to be accepted and rounded to an empty validation set,
    // which downstream evaluation divides by. Both splits must be
    // non-empty, so the fraction is strictly interior.
    throw std::invalid_argument(
        "train_val_split: train_fraction must be in (0, 1); both splits "
        "must be non-empty");
  }
  const std::size_t n = data.size();
  if (n < 2) {
    throw std::invalid_argument(
        "train_val_split: need at least 2 windows to form non-empty "
        "train and validation splits");
  }
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  Rng rng(seed);
  rng.shuffle(std::span<std::size_t>(order));

  // Round, then clamp so extreme-but-valid fractions (e.g. 0.99 at small
  // n) still leave at least one example on each side.
  const auto rounded = static_cast<std::size_t>(
      train_fraction * static_cast<double>(n) + 0.5);
  const std::size_t n_train = std::clamp<std::size_t>(rounded, 1, n - 1);
  const std::size_t k = data.x.dim1();
  const std::size_t nr = data.x.dim2();

  SplitDataset split;
  split.train.x = Tensor3(n_train, k, nr);
  split.train.y = Tensor3(n_train, k, nr);
  split.val.x = Tensor3(n - n_train, k, nr);
  split.val.y = Tensor3(n - n_train, k, nr);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t src = order[i];
    Tensor3& dx = i < n_train ? split.train.x : split.val.x;
    Tensor3& dy = i < n_train ? split.train.y : split.val.y;
    const std::size_t dst = i < n_train ? i : i - n_train;
    auto bx = dx.block(dst);
    auto by = dy.block(dst);
    const auto sx = data.x.block(src);
    const auto sy = data.y.block(src);
    std::copy(sx.begin(), sx.end(), bx.begin());
    std::copy(sy.begin(), sy.end(), by.begin());
  }
  return split;
}

}  // namespace geonas::data
