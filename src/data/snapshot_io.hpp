// Snapshot-matrix and land-mask file I/O.
//
// geonas ships a synthetic SST generator, but the pipeline is dataset
// agnostic: anyone holding the real NOAA OI SST record (or any other
// gridded geophysical field) can export it to this simple binary format
// and run the identical POD-LSTM workflow. The format is a fixed
// little-endian header plus a row-major double payload:
//
//   bytes 0-7   : magic "GEOSNAPS"
//   bytes 8-15  : uint64 rows (Nh, ocean cells)
//   bytes 16-23 : uint64 cols (Ns, snapshots)
//   bytes 24-31 : uint64 first snapshot week index
//   payload     : rows*cols doubles, column-major (one snapshot per column,
//                 matching the POD snapshot-matrix layout of eq. 1)
//
// Masks serialize as magic "GEOMASK1", nlat, nlon, then nlat*nlon bytes of
// 0 (ocean) / 1 (land).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "data/grid.hpp"
#include "tensor/matrix.hpp"

namespace geonas::data {

struct SnapshotRecord {
  Matrix snapshots;           // Nh x Ns, column = one snapshot
  std::uint64_t first_week = 0;
};

void write_snapshots(const SnapshotRecord& record, std::ostream& os);
[[nodiscard]] SnapshotRecord read_snapshots(std::istream& is);
void write_snapshots_file(const SnapshotRecord& record,
                          const std::string& path);
[[nodiscard]] SnapshotRecord read_snapshots_file(const std::string& path);

struct MaskRecord {
  Grid grid;
  std::vector<std::uint8_t> land;  // nlat*nlon flags, 1 = land
};

void write_mask(const MaskRecord& record, std::ostream& os);
[[nodiscard]] MaskRecord read_mask(std::istream& is);
void write_mask_file(const MaskRecord& record, const std::string& path);
[[nodiscard]] MaskRecord read_mask_file(const std::string& path);

}  // namespace geonas::data
