// Process-based forecast comparator surrogates (CESM and HYCOM).
//
// The paper compares the POD-LSTM emulator against two process-based
// systems whose data products we cannot download offline:
//   * CESM — a century-scale coupled climate run: reproduces climatology,
//     seasonality and trend (paper: "picks up trends in the large-scale
//     features, i.e. modes 1 and 2") but cannot track the observed ENSO
//     phase, carries a coarse-grid interpolation bias, and its mesoscale
//     field is an independent realization. Eastern-Pacific weekly RMSE in
//     the paper: ~1.83-1.88 C.
//   * HYCOM — a 1/12-degree short-term forecast system: tracks the truth
//     closely with small phase/amplitude errors and interpolation noise.
//     Eastern-Pacific weekly RMSE in the paper: ~0.99-1.05 C; only
//     available Apr 5 2015 - Jun 24 2018.
// Both surrogates recompose the SyntheticSST truth components with the
// corresponding error structure, so Table I and Figs 5-7 exercise the same
// comparisons with the same qualitative outcome.
#pragma once

#include <cstdint>

#include "data/calendar.hpp"
#include "data/sst.hpp"

namespace geonas::data {

struct CESMOptions {
  std::uint64_t seed = 77;
  double seasonal_phase_error_weeks = 1.6;
  double bias_amplitude = 2.4;    // smooth regional interpolation bias
  double enso_phase_offset = 71.0;  // weeks; the run's own unsynchronized ENSO
  double enso_damping = 0.5;      // climate runs produce a weaker ENSO
  double noise_sigma = 0.5;       // regridding noise
};

class CESMSurrogate {
 public:
  CESMSurrogate(const SyntheticSST& truth, CESMOptions options = CESMOptions{});

  [[nodiscard]] double value(double lat, double lon, std::size_t week) const;
  [[nodiscard]] std::vector<double> field(const Grid& grid,
                                          std::size_t week) const;
  /// Ocean-flattened snapshots, same layout as SyntheticSST::snapshots.
  [[nodiscard]] Matrix snapshots(const LandMask& mask, std::size_t week0,
                                 std::size_t count) const;

 private:
  [[nodiscard]] double bias(double lat, double lon) const noexcept;

  const SyntheticSST* truth_;
  CESMOptions opts_;
};

struct HYCOMOptions {
  std::uint64_t seed = 99;
  double error_wave_amplitude = 0.78;  // smooth forecast-error field RMS
  double bias = 0.22;                  // small systematic offset
  double noise_sigma = 0.85;           // interpolation noise
  /// Weeks of phase error in the forecast's ENSO evolution — the dominant
  /// short-term forecast error source in the Eastern Pacific.
  double enso_lag_weeks = 1.0;
  /// Fraction of the lagged-index discrepancy that reaches the forecast
  /// (the assimilation corrects most of it).
  double enso_error_fraction = 0.6;
};

class HYCOMSurrogate {
 public:
  HYCOMSurrogate(const SyntheticSST& truth,
                 HYCOMOptions options = HYCOMOptions{});

  [[nodiscard]] double value(double lat, double lon, std::size_t week) const;
  [[nodiscard]] std::vector<double> field(const Grid& grid,
                                          std::size_t week) const;
  [[nodiscard]] Matrix snapshots(const LandMask& mask, std::size_t week0,
                                 std::size_t count) const;

  /// First snapshot week with HYCOM data (2015-04-05).
  [[nodiscard]] static std::size_t first_available_week();
  /// Last snapshot week with HYCOM data (2018-06-24).
  [[nodiscard]] static std::size_t last_available_week();

 private:
  const SyntheticSST* truth_;
  HYCOMOptions opts_;
};

}  // namespace geonas::data
