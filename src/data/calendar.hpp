// Calendar bookkeeping for the weekly SST snapshots.
//
// The NOAA OI SST V2 weekly record starts on October 22, 1981 and the
// paper uses 1,914 snapshots through June 30, 2018; snapshot week indices
// therefore map to civil dates. We reproduce that mapping so the
// evaluation sub-ranges (Table I: Apr 5 2015 - Jun 24 2018; Fig 6: week of
// Jun 14 2015) are selected by date exactly as in the paper.
#pragma once

#include <cstddef>
#include <string>

namespace geonas::data {

/// First snapshot date (week 0): 1981-10-22.
inline constexpr int kEpochYear = 1981;
inline constexpr int kEpochMonth = 10;
inline constexpr int kEpochDay = 22;

/// Total weekly snapshots in the record used by the paper.
inline constexpr std::size_t kTotalSnapshots = 1914;
/// Training + validation snapshots (1981-10-22 .. 1989-12-31).
inline constexpr std::size_t kTrainSnapshots = 427;
/// Test snapshots (1990 .. 2018).
inline constexpr std::size_t kTestSnapshots = kTotalSnapshots - kTrainSnapshots;

/// Days since civil epoch 1970-01-01 (proleptic Gregorian).
[[nodiscard]] long days_from_civil(int year, int month, int day) noexcept;

/// Week index (0-based snapshot number) of the snapshot week containing the
/// given date. Negative results mean the date precedes the record.
[[nodiscard]] long week_of_date(int year, int month, int day) noexcept;

/// Civil date string "YYYY-MM-DD" of the first day of snapshot `week`.
[[nodiscard]] std::string date_of_week(std::size_t week);

}  // namespace geonas::data
