#include "data/snapshot_io.hpp"

#include <array>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <stdexcept>

namespace geonas::data {

namespace {

constexpr char kSnapshotMagic[8] = {'G', 'E', 'O', 'S', 'N', 'A', 'P', 'S'};
constexpr char kMaskMagic[8] = {'G', 'E', 'O', 'M', 'A', 'S', 'K', '1'};

void write_u64(std::ostream& os, std::uint64_t value) {
  std::array<unsigned char, 8> bytes{};
  for (int i = 0; i < 8; ++i) {
    bytes[static_cast<std::size_t>(i)] =
        static_cast<unsigned char>((value >> (8 * i)) & 0xFF);
  }
  os.write(reinterpret_cast<const char*>(bytes.data()), 8);
}

/// Reads exactly `size` bytes, tracking `offset` (bytes consumed so far);
/// a short or failed read throws naming the field and the byte offset at
/// which the stream died — instead of leaving zero-filled garbage that
/// later surfaces as an "implausible dimensions" error (or worse, as
/// silently plausible dimensions).
void read_exact(std::istream& is, void* data, std::size_t size,
                std::uint64_t& offset, const char* what) {
  is.read(static_cast<char*>(data), static_cast<std::streamsize>(size));
  if (static_cast<std::size_t>(is.gcount()) != size || !is) {
    throw std::runtime_error(
        std::string("snapshot_io: truncated stream reading ") + what +
        " at byte offset " +
        std::to_string(offset + static_cast<std::uint64_t>(is.gcount())));
  }
  offset += size;
}

std::uint64_t read_u64(std::istream& is, std::uint64_t& offset,
                       const char* what) {
  std::array<unsigned char, 8> bytes{};
  read_exact(is, bytes.data(), 8, offset, what);
  std::uint64_t value = 0;
  for (int i = 7; i >= 0; --i) {
    value = (value << 8) | bytes[static_cast<std::size_t>(i)];
  }
  return value;
}

void require_stream(const std::ios& stream, const char* what) {
  if (!stream) {
    throw std::runtime_error(std::string("snapshot_io: stream failure in ") +
                             what);
  }
}

}  // namespace

void write_snapshots(const SnapshotRecord& record, std::ostream& os) {
  os.write(kSnapshotMagic, 8);
  write_u64(os, record.snapshots.rows());
  write_u64(os, record.snapshots.cols());
  write_u64(os, record.first_week);
  // Column-major payload: one contiguous snapshot per column.
  const std::size_t rows = record.snapshots.rows();
  std::vector<double> column(rows);
  for (std::size_t c = 0; c < record.snapshots.cols(); ++c) {
    for (std::size_t r = 0; r < rows; ++r) column[r] = record.snapshots(r, c);
    os.write(reinterpret_cast<const char*>(column.data()),
             static_cast<std::streamsize>(rows * sizeof(double)));
  }
  require_stream(os, "write_snapshots");
}

SnapshotRecord read_snapshots(std::istream& is) {
  std::uint64_t offset = 0;
  char magic[8];
  read_exact(is, magic, 8, offset, "snapshot magic");
  if (std::memcmp(magic, kSnapshotMagic, 8) != 0) {
    throw std::runtime_error("snapshot_io: bad snapshot magic");
  }
  const std::uint64_t rows = read_u64(is, offset, "snapshot rows");
  const std::uint64_t cols = read_u64(is, offset, "snapshot cols");
  SnapshotRecord record;
  record.first_week = read_u64(is, offset, "snapshot first_week");
  if (rows == 0 || cols == 0 || rows > (1ULL << 32) || cols > (1ULL << 32)) {
    throw std::runtime_error("snapshot_io: implausible snapshot dimensions (" +
                             std::to_string(rows) + " x " +
                             std::to_string(cols) + ")");
  }
  record.snapshots.resize(static_cast<std::size_t>(rows),
                          static_cast<std::size_t>(cols));
  std::vector<double> column(static_cast<std::size_t>(rows));
  for (std::size_t c = 0; c < cols; ++c) {
    // Per-column checked read: a truncated payload reports the failing
    // byte offset instead of silently zero-filling the tail columns.
    read_exact(is, column.data(), column.size() * sizeof(double), offset,
               "snapshot payload column");
    for (std::size_t r = 0; r < rows; ++r) record.snapshots(r, c) = column[r];
  }
  return record;
}

void write_snapshots_file(const SnapshotRecord& record,
                          const std::string& path) {
  std::ofstream os(path, std::ios::binary);
  if (!os) throw std::runtime_error("snapshot_io: cannot open " + path);
  write_snapshots(record, os);
}

SnapshotRecord read_snapshots_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("snapshot_io: cannot open " + path);
  return read_snapshots(is);
}

void write_mask(const MaskRecord& record, std::ostream& os) {
  if (record.land.size() != record.grid.cells()) {
    throw std::invalid_argument("snapshot_io: mask size != grid cells");
  }
  os.write(kMaskMagic, 8);
  write_u64(os, record.grid.nlat);
  write_u64(os, record.grid.nlon);
  os.write(reinterpret_cast<const char*>(record.land.data()),
           static_cast<std::streamsize>(record.land.size()));
  require_stream(os, "write_mask");
}

MaskRecord read_mask(std::istream& is) {
  std::uint64_t offset = 0;
  char magic[8];
  read_exact(is, magic, 8, offset, "mask magic");
  if (std::memcmp(magic, kMaskMagic, 8) != 0) {
    throw std::runtime_error("snapshot_io: bad mask magic");
  }
  MaskRecord record;
  record.grid.nlat = static_cast<std::size_t>(read_u64(is, offset, "mask nlat"));
  record.grid.nlon = static_cast<std::size_t>(read_u64(is, offset, "mask nlon"));
  if (record.grid.cells() == 0 || record.grid.cells() > (1ULL << 32)) {
    throw std::runtime_error("snapshot_io: implausible mask dimensions (" +
                             std::to_string(record.grid.nlat) + " x " +
                             std::to_string(record.grid.nlon) + ")");
  }
  record.land.resize(record.grid.cells());
  read_exact(is, record.land.data(), record.land.size(), offset,
             "mask payload");
  return record;
}

void write_mask_file(const MaskRecord& record, const std::string& path) {
  std::ofstream os(path, std::ios::binary);
  if (!os) throw std::runtime_error("snapshot_io: cannot open " + path);
  write_mask(record, os);
}

MaskRecord read_mask_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("snapshot_io: cannot open " + path);
  return read_mask(is);
}

}  // namespace geonas::data
