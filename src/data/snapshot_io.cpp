#include "data/snapshot_io.hpp"

#include <array>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <stdexcept>

namespace geonas::data {

namespace {

constexpr char kSnapshotMagic[8] = {'G', 'E', 'O', 'S', 'N', 'A', 'P', 'S'};
constexpr char kMaskMagic[8] = {'G', 'E', 'O', 'M', 'A', 'S', 'K', '1'};

void write_u64(std::ostream& os, std::uint64_t value) {
  std::array<unsigned char, 8> bytes{};
  for (int i = 0; i < 8; ++i) {
    bytes[static_cast<std::size_t>(i)] =
        static_cast<unsigned char>((value >> (8 * i)) & 0xFF);
  }
  os.write(reinterpret_cast<const char*>(bytes.data()), 8);
}

std::uint64_t read_u64(std::istream& is) {
  std::array<unsigned char, 8> bytes{};
  is.read(reinterpret_cast<char*>(bytes.data()), 8);
  std::uint64_t value = 0;
  for (int i = 7; i >= 0; --i) {
    value = (value << 8) | bytes[static_cast<std::size_t>(i)];
  }
  return value;
}

void require_stream(const std::ios& stream, const char* what) {
  if (!stream) {
    throw std::runtime_error(std::string("snapshot_io: stream failure in ") +
                             what);
  }
}

}  // namespace

void write_snapshots(const SnapshotRecord& record, std::ostream& os) {
  os.write(kSnapshotMagic, 8);
  write_u64(os, record.snapshots.rows());
  write_u64(os, record.snapshots.cols());
  write_u64(os, record.first_week);
  // Column-major payload: one contiguous snapshot per column.
  const std::size_t rows = record.snapshots.rows();
  std::vector<double> column(rows);
  for (std::size_t c = 0; c < record.snapshots.cols(); ++c) {
    for (std::size_t r = 0; r < rows; ++r) column[r] = record.snapshots(r, c);
    os.write(reinterpret_cast<const char*>(column.data()),
             static_cast<std::streamsize>(rows * sizeof(double)));
  }
  require_stream(os, "write_snapshots");
}

SnapshotRecord read_snapshots(std::istream& is) {
  char magic[8];
  is.read(magic, 8);
  require_stream(is, "read_snapshots header");
  if (std::memcmp(magic, kSnapshotMagic, 8) != 0) {
    throw std::runtime_error("snapshot_io: bad snapshot magic");
  }
  const std::uint64_t rows = read_u64(is);
  const std::uint64_t cols = read_u64(is);
  SnapshotRecord record;
  record.first_week = read_u64(is);
  if (rows == 0 || cols == 0 || rows > (1ULL << 32) || cols > (1ULL << 32)) {
    throw std::runtime_error("snapshot_io: implausible snapshot dimensions");
  }
  record.snapshots.resize(static_cast<std::size_t>(rows),
                          static_cast<std::size_t>(cols));
  std::vector<double> column(static_cast<std::size_t>(rows));
  for (std::size_t c = 0; c < cols; ++c) {
    is.read(reinterpret_cast<char*>(column.data()),
            static_cast<std::streamsize>(column.size() * sizeof(double)));
    for (std::size_t r = 0; r < rows; ++r) record.snapshots(r, c) = column[r];
  }
  require_stream(is, "read_snapshots payload");
  return record;
}

void write_snapshots_file(const SnapshotRecord& record,
                          const std::string& path) {
  std::ofstream os(path, std::ios::binary);
  if (!os) throw std::runtime_error("snapshot_io: cannot open " + path);
  write_snapshots(record, os);
}

SnapshotRecord read_snapshots_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("snapshot_io: cannot open " + path);
  return read_snapshots(is);
}

void write_mask(const MaskRecord& record, std::ostream& os) {
  if (record.land.size() != record.grid.cells()) {
    throw std::invalid_argument("snapshot_io: mask size != grid cells");
  }
  os.write(kMaskMagic, 8);
  write_u64(os, record.grid.nlat);
  write_u64(os, record.grid.nlon);
  os.write(reinterpret_cast<const char*>(record.land.data()),
           static_cast<std::streamsize>(record.land.size()));
  require_stream(os, "write_mask");
}

MaskRecord read_mask(std::istream& is) {
  char magic[8];
  is.read(magic, 8);
  require_stream(is, "read_mask header");
  if (std::memcmp(magic, kMaskMagic, 8) != 0) {
    throw std::runtime_error("snapshot_io: bad mask magic");
  }
  MaskRecord record;
  record.grid.nlat = static_cast<std::size_t>(read_u64(is));
  record.grid.nlon = static_cast<std::size_t>(read_u64(is));
  if (record.grid.cells() == 0 || record.grid.cells() > (1ULL << 32)) {
    throw std::runtime_error("snapshot_io: implausible mask dimensions");
  }
  record.land.resize(record.grid.cells());
  is.read(reinterpret_cast<char*>(record.land.data()),
          static_cast<std::streamsize>(record.land.size()));
  require_stream(is, "read_mask payload");
  return record;
}

void write_mask_file(const MaskRecord& record, const std::string& path) {
  std::ofstream os(path, std::ios::binary);
  if (!os) throw std::runtime_error("snapshot_io: cannot open " + path);
  write_mask(record, os);
}

MaskRecord read_mask_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("snapshot_io: cannot open " + path);
  return read_mask(is);
}

}  // namespace geonas::data
