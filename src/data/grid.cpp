#include "data/grid.hpp"

#include <algorithm>
#include <cmath>

namespace geonas::data {

std::size_t Grid::row_of_lat(double lat) const noexcept {
  const double step = 180.0 / static_cast<double>(nlat);
  const double raw = (lat + 90.0) / step;
  const auto idx = static_cast<long>(std::floor(raw));
  return static_cast<std::size_t>(
      std::clamp<long>(idx, 0, static_cast<long>(nlat) - 1));
}

std::size_t Grid::col_of_lon(double lon) const noexcept {
  double wrapped = std::fmod(lon, 360.0);
  if (wrapped < 0.0) wrapped += 360.0;
  const double step = 360.0 / static_cast<double>(nlon);
  const auto idx = static_cast<long>(std::floor(wrapped / step));
  return static_cast<std::size_t>(
      std::clamp<long>(idx, 0, static_cast<long>(nlon) - 1));
}

std::vector<std::size_t> cells_in_region(const Grid& grid,
                                         const Region& region) {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < grid.nlat; ++i) {
    const double lat = grid.lat_of(i);
    if (lat < region.lat_min || lat > region.lat_max) continue;
    for (std::size_t j = 0; j < grid.nlon; ++j) {
      if (region.contains(lat, grid.lon_of(j))) out.push_back(grid.index(i, j));
    }
  }
  return out;
}

}  // namespace geonas::data
