#include "data/landmask.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

#include "tensor/random.hpp"

namespace geonas::data {

namespace {

constexpr int kHarmonics = 12;

struct Harmonic {
  double amp, klat, klon, phase_lat, phase_lon;
};

std::vector<Harmonic> make_harmonics(std::uint64_t seed) {
  Rng rng(hash_combine(seed, 0xC0A57ULL));
  std::vector<Harmonic> hs(kHarmonics);
  for (int m = 0; m < kHarmonics; ++m) {
    // Low wavenumbers give continent-scale blobs; amplitude decays with
    // frequency so the coastline is smooth.
    const double klat = 1.0 + rng.uniform() * 3.0;
    const double klon = 1.0 + rng.uniform() * 4.0;
    hs[m] = {1.0 / (1.0 + 0.5 * (klat + klon)), klat, klon,
             rng.uniform(0.0, 2.0 * std::numbers::pi),
             rng.uniform(0.0, 2.0 * std::numbers::pi)};
  }
  return hs;
}

double elevation(const std::vector<Harmonic>& hs, double lat_deg,
                 double lon_deg) {
  const double lat = lat_deg * std::numbers::pi / 180.0;
  const double lon = lon_deg * std::numbers::pi / 180.0;
  double e = 0.0;
  for (const Harmonic& h : hs) {
    e += h.amp * std::sin(h.klat * lat + h.phase_lat) *
         std::cos(h.klon * lon + h.phase_lon);
  }
  return e;
}

}  // namespace

LandMask::LandMask(const Grid& grid, std::uint64_t seed, double land_fraction)
    : grid_(grid), land_(grid.cells(), 0) {
  if (land_fraction < 0.0 || land_fraction >= 1.0) {
    throw std::invalid_argument("LandMask: land_fraction must be in [0, 1)");
  }
  const auto hs = make_harmonics(seed);

  // Compute the elevation of every cell, then pick the threshold as a
  // quantile over non-Antarctic cells, discounting the always-land cap so
  // the total land fraction hits the request.
  std::vector<double> elev(grid.cells());
  std::vector<double> sorted;
  sorted.reserve(grid.cells());
  std::size_t cap_cells = 0;
  for (std::size_t i = 0; i < grid.nlat; ++i) {
    const bool antarctic = grid.lat_of(i) < -78.0;
    for (std::size_t j = 0; j < grid.nlon; ++j) {
      elev[grid.index(i, j)] = elevation(hs, grid.lat_of(i), grid.lon_of(j));
      if (antarctic) {
        ++cap_cells;
      } else {
        sorted.push_back(elev[grid.index(i, j)]);
      }
    }
  }
  const double want_land =
      std::max(0.0, land_fraction * static_cast<double>(grid.cells()) -
                        static_cast<double>(cap_cells));
  const auto cut = static_cast<std::size_t>(
      std::max(0.0, static_cast<double>(sorted.size()) - want_land));
  const std::size_t nth = std::min(cut, sorted.size() - 1);
  std::nth_element(sorted.begin(), sorted.begin() + static_cast<long>(nth),
                   sorted.end());
  const double threshold = sorted[nth];

  for (std::size_t i = 0; i < grid.nlat; ++i) {
    const bool antarctic = grid.lat_of(i) < -78.0;
    for (std::size_t j = 0; j < grid.nlon; ++j) {
      const std::size_t cell = grid.index(i, j);
      land_[cell] = (antarctic || elev[cell] > threshold) ? 1 : 0;
    }
  }
  ocean_cells_.reserve(grid.cells());
  for (std::size_t cell = 0; cell < grid.cells(); ++cell) {
    if (!land_[cell]) ocean_cells_.push_back(cell);
  }
  if (ocean_cells_.empty()) {
    throw std::domain_error("LandMask: mask left no ocean cells");
  }
}

std::vector<double> LandMask::flatten(std::span<const double> full) const {
  if (full.size() != grid_.cells()) {
    throw std::invalid_argument("LandMask::flatten: field size mismatch");
  }
  std::vector<double> out(ocean_cells_.size());
  for (std::size_t k = 0; k < ocean_cells_.size(); ++k) {
    out[k] = full[ocean_cells_[k]];
  }
  return out;
}

std::vector<double> LandMask::unflatten(std::span<const double> ocean,
                                        double land_fill) const {
  if (ocean.size() != ocean_cells_.size()) {
    throw std::invalid_argument("LandMask::unflatten: field size mismatch");
  }
  std::vector<double> out(grid_.cells(), land_fill);
  for (std::size_t k = 0; k < ocean_cells_.size(); ++k) {
    out[ocean_cells_[k]] = ocean[k];
  }
  return out;
}

std::vector<std::size_t> LandMask::ocean_positions_in_region(
    const Region& region) const {
  std::vector<std::size_t> out;
  for (std::size_t k = 0; k < ocean_cells_.size(); ++k) {
    const std::size_t cell = ocean_cells_[k];
    const std::size_t i = cell / grid_.nlon;
    const std::size_t j = cell % grid_.nlon;
    if (region.contains(grid_.lat_of(i), grid_.lon_of(j))) out.push_back(k);
  }
  return out;
}

}  // namespace geonas::data
