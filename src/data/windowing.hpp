// Windowed example extraction and dataset splitting (paper §II-B).
//
// Given the POD coefficient matrix A (Nr x Ns), every width-2K subinterval
// becomes one example: the first K columns are the input sequence, the
// last K the target sequence ("measurements of 8 weeks ... to predict 8
// weeks of the same in the future"). Examples are split 80/20 into
// training and validation by a seeded random permutation.
//
// Note: for Ns = 427 and K = 8 the stride-1 window count is
// Ns - 2K + 1 = 412; the paper reports 1,111 examples for the same
// parameters, which is not reproducible from its stated definition. We
// implement the stated definition (see EXPERIMENTS.md).
#pragma once

#include <cstdint>

#include "tensor/matrix.hpp"

namespace geonas::data {

struct WindowConfig {
  std::size_t window = 8;  // K: input length == output length
  std::size_t stride = 1;  // must be >= 1; 0 is rejected
};

/// A windowed sequence-to-sequence dataset: x/y are [N, K, Nr].
struct WindowedDataset {
  Tensor3 x;
  Tensor3 y;

  [[nodiscard]] std::size_t size() const noexcept { return x.dim0(); }
};

/// Extracts windowed examples from coefficients A (Nr x Ns), time along
/// columns. Throws when Ns < 2K or config.stride == 0.
[[nodiscard]] WindowedDataset make_windows(const Matrix& coefficients,
                                           const WindowConfig& config);

/// Number of examples make_windows will produce. Throws when
/// config.stride == 0 (a zero stride would repeat the same window).
[[nodiscard]] std::size_t window_count(std::size_t ns,
                                       const WindowConfig& config);

struct SplitDataset {
  WindowedDataset train;
  WindowedDataset val;
};

/// Seeded random 80/20 (by default) train/validation split. Requires
/// train_fraction strictly in (0, 1) and at least 2 examples, and clamps
/// the rounded train count to [1, n-1]: both splits are always
/// non-empty (validation metrics divide by the validation count).
[[nodiscard]] SplitDataset train_val_split(const WindowedDataset& data,
                                           double train_fraction = 0.8,
                                           std::uint64_t seed = 1234);

}  // namespace geonas::data
