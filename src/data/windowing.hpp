// Windowed example extraction and dataset splitting (paper §II-B).
//
// Given the POD coefficient matrix A (Nr x Ns), every width-2K subinterval
// becomes one example: the first K columns are the input sequence, the
// last K the target sequence ("measurements of 8 weeks ... to predict 8
// weeks of the same in the future"). Examples are split 80/20 into
// training and validation by a seeded random permutation.
//
// Note: for Ns = 427 and K = 8 the stride-1 window count is
// Ns - 2K + 1 = 412; the paper reports 1,111 examples for the same
// parameters, which is not reproducible from its stated definition. We
// implement the stated definition (see EXPERIMENTS.md).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "tensor/matrix.hpp"

namespace geonas::data {

struct WindowConfig {
  std::size_t window = 8;  // K: input length == output length
  std::size_t stride = 1;  // must be >= 1; 0 is rejected
};

/// A windowed sequence-to-sequence dataset: x/y are [N, K, Nr].
struct WindowedDataset {
  Tensor3 x;
  Tensor3 y;

  [[nodiscard]] std::size_t size() const noexcept { return x.dim0(); }
};

/// Zero-copy strided view over the windowed examples of a coefficient
/// matrix. Instead of materializing every window into an [N, K, Nr]
/// tensor pair (which duplicates each source column up to 2K times),
/// the view gathers one example at a time straight out of the matrix:
/// example e's input block is columns [e*stride, e*stride + K) and its
/// target block columns [e*stride + K, e*stride + 2K), transposed to
/// row-major [K, Nr]. Non-owning — the coefficient matrix must outlive
/// the view, and gathers read it in place (aliasing rule: do not mutate
/// the matrix while trainers hold views over it).
///
/// Throws like make_windows: stride == 0, or a series shorter than one
/// 2K window, is rejected at construction.
class WindowView {
 public:
  WindowView(const Matrix& coefficients, const WindowConfig& config);

  /// Number of examples (same value as window_count).
  [[nodiscard]] std::size_t size() const noexcept { return count_; }
  [[nodiscard]] std::size_t window() const noexcept { return config_.window; }
  [[nodiscard]] std::size_t stride() const noexcept { return config_.stride; }
  /// Feature count per step (Nr, the POD coefficient count).
  [[nodiscard]] std::size_t features() const noexcept {
    return coefficients_->rows();
  }

  /// Writes example e's input block, row-major [K, Nr], into dst
  /// (exactly K*Nr elements).
  void gather_x(std::size_t e, std::span<double> dst) const;
  /// Same for the target block (the K columns after the input's).
  void gather_y(std::size_t e, std::span<double> dst) const;

  /// Materializing fallback: the classic tensor-pair dataset,
  /// bitwise-identical to make_windows on the same inputs.
  [[nodiscard]] WindowedDataset materialize() const;

 private:
  void gather(std::size_t first_col, std::span<double> dst) const;

  const Matrix* coefficients_;
  WindowConfig config_;
  std::size_t count_;
};

/// Extracts windowed examples from coefficients A (Nr x Ns), time along
/// columns. Throws when Ns < 2K or config.stride == 0.
[[nodiscard]] WindowedDataset make_windows(const Matrix& coefficients,
                                           const WindowConfig& config);

/// Number of examples make_windows will produce. Throws when
/// config.stride == 0 (a zero stride would repeat the same window).
[[nodiscard]] std::size_t window_count(std::size_t ns,
                                       const WindowConfig& config);

struct SplitDataset {
  WindowedDataset train;
  WindowedDataset val;
};

/// Seeded random 80/20 (by default) train/validation split. Requires
/// train_fraction strictly in (0, 1) and at least 2 examples, and clamps
/// the rounded train count to [1, n-1]: both splits are always
/// non-empty (validation metrics divide by the validation count).
[[nodiscard]] SplitDataset train_val_split(const WindowedDataset& data,
                                           double train_fraction = 0.8,
                                           std::uint64_t seed = 1234);

/// Index-level split: which example ids land in train/validation. The
/// permutation and clamping match train_val_split exactly, so routing
/// these indices through a WindowView reproduces the materialized split
/// bitwise without copying any window.
struct SplitIndices {
  std::vector<std::size_t> train;
  std::vector<std::size_t> val;
};

[[nodiscard]] SplitIndices train_val_split_indices(std::size_t n,
                                                   double train_fraction = 0.8,
                                                   std::uint64_t seed = 1234);

}  // namespace geonas::data
