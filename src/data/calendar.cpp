#include "data/calendar.hpp"

#include <array>
#include <cstdio>

namespace geonas::data {

long days_from_civil(int year, int month, int day) noexcept {
  // Howard Hinnant's civil-from-days inverse; valid over the full range of
  // interest.
  year -= month <= 2;
  const long era = (year >= 0 ? year : year - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(year - era * 400);
  const unsigned doy =
      static_cast<unsigned>((153 * (month + (month > 2 ? -3 : 9)) + 2) / 5 +
                            day - 1);
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
  return era * 146097 + static_cast<long>(doe) - 719468;
}

long week_of_date(int year, int month, int day) noexcept {
  const long epoch = days_from_civil(kEpochYear, kEpochMonth, kEpochDay);
  const long delta = days_from_civil(year, month, day) - epoch;
  // Floor division for dates before the record start.
  return delta >= 0 ? delta / 7 : -((-delta + 6) / 7);
}

std::string date_of_week(std::size_t week) {
  long days = days_from_civil(kEpochYear, kEpochMonth, kEpochDay) +
              static_cast<long>(week) * 7;
  // civil_from_days (Hinnant).
  days += 719468;
  const long era = (days >= 0 ? days : days - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(days - era * 146097);
  const unsigned yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const long y = static_cast<long>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
  const unsigned mp = (5 * doy + 2) / 153;
  const unsigned d = doy - (153 * mp + 2) / 5 + 1;
  const unsigned m = mp + (mp < 10 ? 3 : static_cast<unsigned>(-9));
  const long year = y + (m <= 2);

  std::array<char, 48> buf{};
  std::snprintf(buf.data(), buf.size(), "%04ld-%02u-%02u", year, m, d);
  return std::string(buf.data());
}

}  // namespace geonas::data
