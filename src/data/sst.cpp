#include "data/sst.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <numbers>

#include "tensor/random.hpp"

namespace geonas::data {

namespace {
constexpr double kDeg2Rad = std::numbers::pi / 180.0;

/// Hash a (seed, week, lat-cell, lon-cell) tuple into a standard normal.
double hash_normal(std::uint64_t seed, std::uint64_t a, std::uint64_t b,
                   std::uint64_t c) {
  std::uint64_t h = hash_combine(hash_combine(seed, a), hash_combine(b, c));
  std::uint64_t s1 = splitmix64(h);
  std::uint64_t s2 = splitmix64(h);
  double u1 = static_cast<double>(s1 >> 11) * 0x1.0p-53;
  const double u2 = static_cast<double>(s2 >> 11) * 0x1.0p-53;
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * std::numbers::pi * u2);
}
}  // namespace

SyntheticSST::SyntheticSST(SSTOptions options) : opts_(options) {}

double SyntheticSST::climatology(double lat) const noexcept {
  const double c = std::cos(lat * kDeg2Rad);
  // Warm pool ~29.5 C at the equator, below-freezing brine near the poles.
  return 31.0 * c * c - 1.6;
}

double SyntheticSST::seasonal(double lat, double lon, double week_time,
                              double phase_shift_weeks) const noexcept {
  const double lat_rad = lat * kDeg2Rad;
  const double lon_rad = lon * kDeg2Rad;
  // Hemisphere-antisymmetric amplitude, modulated in longitude (western
  // boundary regions respond more strongly than ocean interiors).
  const double amp = opts_.seasonal_amplitude * std::sin(lat_rad) *
                     (1.0 + 0.28 * std::sin(lon_rad + 2.2));
  // Longitude-dependent seasonal lag (+-4 weeks): continental coasts lead,
  // maritime interiors trail. This puts the annual cycle's sine AND cosine
  // quadratures into the spatial field, spreading periodic variance over
  // several POD modes exactly as in the observed SST record.
  const double lag = 4.0 * std::sin(lon_rad + 1.0);
  const double phase = 2.0 * std::numbers::pi *
                       (week_time + phase_shift_weeks + lag) / kWeeksPerYear;
  // Week 0 is late October; peak NH warmth sits in late August, i.e. about
  // 8.5 weeks before the epoch.
  const double annual = amp * std::cos(phase + 2.0 * std::numbers::pi * 8.5 /
                                                   kWeeksPerYear);
  const double semi = opts_.semiannual_amplitude * std::abs(std::sin(lat_rad)) *
                      (1.0 + 0.3 * std::cos(lon_rad - 0.7)) *
                      std::cos(2.0 * phase + 0.9);
  return annual + semi;
}

double SyntheticSST::trend(double lat, double week_time) const noexcept {
  const double per_week = opts_.trend_per_decade / (10.0 * kWeeksPerYear);
  const double lat_weight = 0.4 + 0.6 * std::cos(lat * kDeg2Rad);
  return per_week * week_time * lat_weight;
}

void SyntheticSST::ensure_chaos_series(std::size_t weeks) const {
  if (enso_series_.size() >= weeks) return;
  // Lorenz-63 (sigma=10, rho=28, beta=8/3) integrated with RK4 at fine
  // steps; weekly samples of x become the ENSO index and of y (offset by a
  // quarter of the record) the teleconnection index, each standardized.
  // Deterministic: fixed initial condition and step size.
  const std::size_t horizon = std::max<std::size_t>(weeks, 2400) + 600;
  const double dt_natural = 0.004;
  const double week_natural = opts_.chaos_rate;
  const auto steps_per_week =
      static_cast<std::size_t>(week_natural / dt_natural) + 1;
  const double dt = week_natural / static_cast<double>(steps_per_week);

  constexpr double kSigma = 10.0, kRho = 28.0, kBeta = 8.0 / 3.0;
  auto deriv = [](const std::array<double, 3>& s) {
    return std::array<double, 3>{kSigma * (s[1] - s[0]),
                                 s[0] * (kRho - s[2]) - s[1],
                                 s[0] * s[1] - kBeta * s[2]};
  };
  auto rk4_step = [&](std::array<double, 3>& s) {
    const auto k1 = deriv(s);
    std::array<double, 3> tmp;
    for (int i = 0; i < 3; ++i) tmp[i] = s[i] + 0.5 * dt * k1[i];
    const auto k2 = deriv(tmp);
    for (int i = 0; i < 3; ++i) tmp[i] = s[i] + 0.5 * dt * k2[i];
    const auto k3 = deriv(tmp);
    for (int i = 0; i < 3; ++i) tmp[i] = s[i] + dt * k3[i];
    const auto k4 = deriv(tmp);
    for (int i = 0; i < 3; ++i) {
      s[i] += dt / 6.0 * (k1[i] + 2.0 * k2[i] + 2.0 * k3[i] + k4[i]);
    }
  };

  std::array<double, 3> state{1.0, 1.0, 20.0};
  // Burn onto the attractor.
  for (std::size_t s = 0; s < 200 * steps_per_week; ++s) rk4_step(state);

  std::vector<double> xs, ys;
  xs.reserve(horizon);
  ys.reserve(horizon);
  for (std::size_t w = 0; w < horizon; ++w) {
    xs.push_back(state[0]);
    ys.push_back(state[1]);
    for (std::size_t s = 0; s < steps_per_week; ++s) rk4_step(state);
  }

  auto standardize = [](std::vector<double>& v) {
    double m = 0.0;
    for (double x : v) m += x;
    m /= static_cast<double>(v.size());
    double var = 0.0;
    for (double x : v) var += (x - m) * (x - m);
    const double sd = std::sqrt(var / static_cast<double>(v.size()));
    for (double& x : v) x = (x - m) / (sd > 1e-12 ? sd : 1.0);
  };
  standardize(xs);
  standardize(ys);
  // Offset the teleconnection series so the two indices decorrelate.
  const std::size_t offset = horizon / 4;
  std::vector<double> tele(horizon);
  for (std::size_t w = 0; w < horizon; ++w) {
    tele[w] = ys[(w + offset) % horizon];
  }
  enso_series_ = std::move(xs);
  tele_series_ = std::move(tele);
}

double SyntheticSST::enso_index(double week_time) const {
  const double t = std::max(0.0, week_time);
  ensure_chaos_series(static_cast<std::size_t>(t) + 3);
  const auto i0 = static_cast<std::size_t>(t);
  const double frac = t - static_cast<double>(i0);
  const double lorenz =
      (1.0 - frac) * enso_series_[i0] + frac * enso_series_[i0 + 1];
  // ENSO blend: a recurrent quasi-periodic backbone (a ~3.7-year cycle
  // amplitude-modulated on a decadal scale plus a ~2.2-year overtone — the
  // part an emulator trained on 8 years can learn) with a chaotic Lorenz
  // component on top (the part that defeats linear AR extrapolation). The
  // weights are chosen so the blended index has ~unit variance (the qp
  // term's own sd is ~0.78), keeping the ENSO mode's energy solidly inside
  // the retained POD basis.
  const double qp =
      (std::sin(2.0 * std::numbers::pi * t / 192.0 + 0.7) *
           (1.0 + 0.45 * std::sin(2.0 * std::numbers::pi * t / 1040.0 + 1.9)) +
       0.35 * std::sin(2.0 * std::numbers::pi * t / 113.0)) /
      0.78;
  const double base = 0.85 * qp + 0.52 * lorenz;
  // Regime change: events strengthen through the record (the observed
  // post-1990 intensification), pushing test-period amplitudes outside the
  // 1981-89 training support.
  return base * (1.0 + opts_.enso_envelope_growth * t);
}

double SyntheticSST::tele_index(double week_time) const {
  const double t = std::max(0.0, week_time);
  ensure_chaos_series(static_cast<std::size_t>(t) + 3);
  const auto i0 = static_cast<std::size_t>(t);
  const double frac = t - static_cast<double>(i0);
  const double lorenz =
      (1.0 - frac) * tele_series_[i0] + frac * tele_series_[i0 + 1];
  // Same blend philosophy (and ~unit variance) as the ENSO index, with
  // its own periods.
  const double qp =
      (std::sin(2.0 * std::numbers::pi * t / 271.0 + 2.3) +
       0.4 * std::sin(2.0 * std::numbers::pi * t / 89.0 + 0.4)) /
      0.76;
  return 0.85 * qp + 0.52 * lorenz;
}

double SyntheticSST::tele_pattern(double lat, double lon) const noexcept {
  // Mid-latitude North-Pacific blob (a PDO/NPGO-like loading).
  const double dlat = (lat - 42.0) / 13.0;
  const double dlon = (lon - 185.0) / 40.0;
  return std::exp(-dlat * dlat - dlon * dlon);
}

double SyntheticSST::enso_pattern(double lat, double lon) const noexcept {
  // Broad enough that the ENSO mode carries top-5 global POD energy, as
  // the observed field's ENSO mode does.
  const double dlat = lat / 11.0;
  const double dlon = (lon - 235.0) / 50.0;
  return std::exp(-dlat * dlat - dlon * dlon);
}

const SyntheticSST::WaveBank& SyntheticSST::waves_for(
    std::uint64_t realization_seed) const {
  for (const auto& [seed, bank] : wave_cache_) {
    if (seed == realization_seed) return bank;
  }
  Rng rng(hash_combine(realization_seed, 0xEDD1E5ULL));
  WaveBank bank;
  bank.waves.resize(static_cast<std::size_t>(opts_.eddy_waves));
  const double per_wave =
      opts_.eddy_amplitude /
      std::sqrt(0.5 * static_cast<double>(bank.waves.size()));
  for (Wave& w : bank.waves) {
    w.amp = per_wave * rng.uniform(0.6, 1.4);
    // Wavenumbers in cycles over the domain: mesoscale (5..22 around the
    // globe). Periods span 14..90 weeks — slow enough that an 8-week
    // history carries predictive information about the next 8 weeks.
    w.klat = rng.uniform(3.0, 14.0) * (rng.bernoulli(0.5) ? 1.0 : -1.0);
    w.klon = rng.uniform(5.0, 22.0) * (rng.bernoulli(0.5) ? 1.0 : -1.0);
    w.omega = 2.0 * std::numbers::pi / rng.uniform(14.0, 90.0);
    w.phase = rng.uniform(0.0, 2.0 * std::numbers::pi);
    w.amp_seed = rng.next();
  }
  bank.amp_series.resize(bank.waves.size());
  wave_cache_.emplace_back(realization_seed, std::move(bank));
  return wave_cache_.back().second;
}

void SyntheticSST::ensure_amp_series(const WaveBank& bank,
                                     std::size_t weeks) const {
  // AR(1) amplitude factors per wave: a(t+1) = phi a(t) + e(t), scaled to
  // mean 1 and the configured modulation depth. The innovations come from
  // a per-wave hash stream, so the series are deterministic and extendable.
  auto& series = const_cast<WaveBank&>(bank).amp_series;
  const double phi = opts_.eddy_ar1;
  const double innovation_sd =
      opts_.eddy_modulation * std::sqrt(std::max(1e-9, 1.0 - phi * phi));
  for (std::size_t m = 0; m < bank.waves.size(); ++m) {
    auto& s = series[m];
    if (s.size() >= weeks) continue;
    double prev_dev = s.empty() ? 0.0 : s.back() - 1.0;
    if (s.empty()) s.reserve(weeks + 64);
    for (std::size_t w = s.size(); w < weeks; ++w) {
      const double innovation =
          innovation_sd *
          hash_normal(bank.waves[m].amp_seed, w, 0xA3ULL, 0x77ULL);
      prev_dev = phi * prev_dev + innovation;
      s.push_back(1.0 + prev_dev);
    }
  }
}

double SyntheticSST::eddy(double lat, double lon, double week_time,
                          std::uint64_t realization_seed) const {
  const WaveBank& bank = waves_for(realization_seed);
  const double t = std::max(0.0, week_time);
  const auto i0 = static_cast<std::size_t>(t);
  const double frac = t - static_cast<double>(i0);
  ensure_amp_series(bank, i0 + 3);

  const double lat_rad = lat * kDeg2Rad;
  // Eddy kinetic energy concentrates along mid-latitude boundary currents.
  const double envelope = 0.35 + 0.65 * std::pow(std::sin(2.0 * lat_rad), 2);
  const double u = lat / 180.0;   // [-0.5, 0.5]
  const double v = lon / 360.0;   // [0, 1]
  double acc = 0.0;
  for (std::size_t m = 0; m < bank.waves.size(); ++m) {
    const Wave& w = bank.waves[m];
    const double a = (1.0 - frac) * bank.amp_series[m][i0] +
                     frac * bank.amp_series[m][i0 + 1];
    acc += a * w.amp *
           std::sin(2.0 * std::numbers::pi * (w.klat * u + w.klon * v) -
                    w.omega * week_time + w.phase);
  }
  return envelope * acc;
}

double SyntheticSST::noise(double lat, double lon, std::size_t week) const {
  const auto qlat = static_cast<std::uint64_t>((lat + 90.0) * 16.0);
  const auto qlon = static_cast<std::uint64_t>(lon * 16.0);
  return opts_.noise_sigma * hash_normal(opts_.seed, week, qlat, qlon);
}

double SyntheticSST::value(double lat, double lon, std::size_t week) const {
  const auto t = static_cast<double>(week);
  double temp = climatology(lat) + seasonal(lat, lon, t) + trend(lat, t) +
                opts_.enso_amplitude * enso_index(t) * enso_pattern(lat, lon) +
                opts_.tele_amplitude * tele_index(t) * tele_pattern(lat, lon) +
                eddy(lat, lon, t, opts_.seed) + noise(lat, lon, week);
  // Sea water cannot cool much below the freezing point of brine.
  return std::max(temp, -1.9);
}

std::vector<double> SyntheticSST::field(const Grid& grid,
                                        std::size_t week) const {
  std::vector<double> out(grid.cells());
  for (std::size_t i = 0; i < grid.nlat; ++i) {
    const double lat = grid.lat_of(i);
    for (std::size_t j = 0; j < grid.nlon; ++j) {
      out[grid.index(i, j)] = value(lat, grid.lon_of(j), week);
    }
  }
  return out;
}

Matrix SyntheticSST::snapshots(const LandMask& mask, std::size_t week0,
                               std::size_t count) const {
  const Grid& grid = mask.grid();
  Matrix s(mask.ocean_count(), count);
  for (std::size_t c = 0; c < count; ++c) {
    const std::vector<double> full = field(grid, week0 + c);
    const std::vector<double> ocean = mask.flatten(full);
    s.set_col(c, ocean);
  }
  return s;
}

}  // namespace geonas::data
