// Synthetic NOAA-OI-like weekly sea-surface-temperature generator.
//
// Substitute for the proprietary-download NOAA OI SST V2 record (see
// DESIGN.md §1). The generated field is a deterministic function of
// (lat, lon, week, seed) composed of:
//   * a latitudinal climatology (warm equator, cold poles),
//   * an annual + semi-annual seasonal cycle with hemisphere-antisymmetric
//     amplitude (the paper's "strong periodic structure"),
//   * an ENSO-like quasi-periodic mode localized in the eastern equatorial
//     Pacific (the Table I assessment region),
//   * a slow warming trend,
//   * mesoscale eddies: a fixed bank of traveling waves, stronger in
//     mid-latitudes, giving the increasingly stochastic higher POD modes
//     the paper describes ("mode 4 and beyond"),
//   * hash-based white measurement noise.
// The deterministic components are low-rank, so ~5 POD modes capture
// ~90 % of the centered variance — matching the paper's Nr = 5 setting.
#pragma once

#include <cstdint>
#include <vector>

#include "data/grid.hpp"
#include "data/landmask.hpp"
#include "tensor/matrix.hpp"

namespace geonas::data {

/// Mean tropical year in weeks; the seasonal cycle period.
inline constexpr double kWeeksPerYear = 52.1775;

struct SSTOptions {
  std::uint64_t seed = 2020;
  double seasonal_amplitude = 6.5;   // deg C at high latitude
  double semiannual_amplitude = 0.9;
  double enso_amplitude = 0.7;       // deg C at pattern center
  /// Lorenz-63 time units per week for the chaotic climate indices; sets
  /// the predictability horizon (Lyapunov time ~ 1.1/chaos_rate weeks).
  double chaos_rate = 0.02;
  double enso_envelope_growth = 1.2e-4;  // amplitude growth per week
  double tele_amplitude = 1.0;       // teleconnection mode, deg C at center
  double trend_per_decade = 0.13;    // deg C per decade at the equator
  /// Eddy-amplitude AR(1) weekly autocorrelation (1 = frozen amplitudes).
  double eddy_ar1 = 0.93;
  double eddy_modulation = 0.55;     // relative amplitude-modulation depth
  double eddy_amplitude = 0.85;      // total RMS of the eddy field
  double noise_sigma = 0.12;         // white measurement noise
  int eddy_waves = 48;               // traveling waves in the eddy bank
};

class SyntheticSST {
 public:
  explicit SyntheticSST(SSTOptions options = SSTOptions{});

  [[nodiscard]] const SSTOptions& options() const noexcept { return opts_; }

  /// Temperature at an exact location and snapshot week (deg C).
  [[nodiscard]] double value(double lat, double lon, std::size_t week) const;

  /// Full-grid field at `week`, row-major [nlat x nlon] (land cells get
  /// ordinary values; apply a LandMask to discard them).
  [[nodiscard]] std::vector<double> field(const Grid& grid,
                                          std::size_t week) const;

  /// Ocean-flattened snapshot matrix S in R^{Nh x count} for weeks
  /// [week0, week0 + count) — the paper's eq. (1) layout.
  [[nodiscard]] Matrix snapshots(const LandMask& mask, std::size_t week0,
                                 std::size_t count) const;

  // --- individual components, exposed so the CESM/HYCOM comparator
  // --- surrogates can recompose the field with controlled errors ---

  /// Time-mean zonal climatology.
  [[nodiscard]] double climatology(double lat) const noexcept;
  /// Annual + semi-annual cycle. The seasonal phase and amplitude vary
  /// with longitude (continental vs maritime response), so the periodic
  /// content spans several POD modes — as it does in the observed field.
  /// `phase_shift_weeks` lets comparators model phase error.
  [[nodiscard]] double seasonal(double lat, double lon, double week_time,
                                double phase_shift_weeks = 0.0) const noexcept;
  /// Secular warming trend.
  [[nodiscard]] double trend(double lat, double week_time) const noexcept;
  /// ENSO index (dimensionless, O(1)): the x-component of a slowed
  /// Lorenz-63 system — deterministic chaos that is short-term predictable
  /// by nonlinear models (the LSTM) but defeats finite-tap linear AR
  /// prediction, with an amplitude envelope that strengthens through the
  /// test decades (a post-training regime change that additionally defeats
  /// tree regressors). Negative times clamp to 0.
  [[nodiscard]] double enso_index(double week_time) const;
  /// A second chaotic climate mode (the Lorenz y-component, offset in
  /// time) loading on a mid-latitude North-Pacific pattern.
  [[nodiscard]] double tele_index(double week_time) const;
  [[nodiscard]] double tele_pattern(double lat, double lon) const noexcept;
  /// ENSO spatial loading (1 at pattern center, ~0 elsewhere).
  [[nodiscard]] double enso_pattern(double lat, double lon) const noexcept;
  /// Mesoscale eddy field for an alternative seed (comparators draw their
  /// own realizations); pass opts_.seed for the truth realization.
  [[nodiscard]] double eddy(double lat, double lon, double week_time,
                            std::uint64_t realization_seed) const;
  /// Hash-based white noise for a given cell/week (truth realization).
  [[nodiscard]] double noise(double lat, double lon, std::size_t week) const;

 private:
  struct Wave {
    double amp, klat, klon, omega, phase;
    std::uint64_t amp_seed;  // stream for the AR(1) amplitude modulation
  };
  struct WaveBank {
    std::vector<Wave> waves;
    // Weekly AR(1) amplitude factors, one series per wave (lazily grown).
    std::vector<std::vector<double>> amp_series;
  };
  [[nodiscard]] const WaveBank& waves_for(std::uint64_t realization_seed) const;
  void ensure_amp_series(const WaveBank& bank, std::size_t weeks) const;
  /// Lazily integrates the Lorenz system out to at least `weeks`.
  void ensure_chaos_series(std::size_t weeks) const;

  SSTOptions opts_;
  mutable std::vector<std::pair<std::uint64_t, WaveBank>> wave_cache_;
  mutable std::vector<double> enso_series_;  // weekly samples, normalized
  mutable std::vector<double> tele_series_;
};

}  // namespace geonas::data
