#include "data/comparators.hpp"

#include <cmath>
#include <numbers>

#include "tensor/random.hpp"

namespace geonas::data {

namespace {
double hash_normal(std::uint64_t seed, std::uint64_t a, std::uint64_t b,
                   std::uint64_t c) {
  std::uint64_t h = hash_combine(hash_combine(seed, a), hash_combine(b, c));
  std::uint64_t s1 = splitmix64(h);
  std::uint64_t s2 = splitmix64(h);
  double u1 = static_cast<double>(s1 >> 11) * 0x1.0p-53;
  const double u2 = static_cast<double>(s2 >> 11) * 0x1.0p-53;
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * std::numbers::pi * u2);
}

Matrix collect_snapshots(const auto& model, const LandMask& mask,
                         std::size_t week0, std::size_t count) {
  Matrix s(mask.ocean_count(), count);
  for (std::size_t c = 0; c < count; ++c) {
    const auto full = model.field(mask.grid(), week0 + c);
    s.set_col(c, mask.flatten(full));
  }
  return s;
}
}  // namespace

CESMSurrogate::CESMSurrogate(const SyntheticSST& truth, CESMOptions options)
    : truth_(&truth), opts_(options) {}

double CESMSurrogate::bias(double lat, double lon) const noexcept {
  // Smooth, fixed-in-time regional bias from coarse-grid interpolation,
  // plus the well-documented uniform warm bias of coupled-model tropical
  // SSTs (~1 C).
  const double u = lat * std::numbers::pi / 180.0;
  const double v = lon * std::numbers::pi / 180.0;
  return opts_.bias_amplitude *
             (0.55 * std::sin(2.0 * u + 0.4) * std::cos(1.5 * v + 1.1) +
              0.45 * std::sin(3.1 * u - 0.8) * std::sin(2.3 * v + 0.2)) +
         1.0;
}

double CESMSurrogate::value(double lat, double lon, std::size_t week) const {
  const auto t = static_cast<double>(week);
  const SyntheticSST& truth = *truth_;
  const double enso_own =
      opts_.enso_damping * truth.options().enso_amplitude *
      truth.enso_index(t + opts_.enso_phase_offset) * truth.enso_pattern(lat, lon);
  // The climate run's internal variability modes evolve on their own
  // (time-offset) trajectories, damped as coupled models typically are.
  const double tele_own =
      opts_.enso_damping * truth.options().tele_amplitude *
      truth.tele_index(t + opts_.enso_phase_offset) * truth.tele_pattern(lat, lon);
  double temp = truth.climatology(lat) +
                truth.seasonal(lat, lon, t, opts_.seasonal_phase_error_weeks) +
                truth.trend(lat, t) + enso_own + tele_own +
                truth.eddy(lat, lon, t, opts_.seed) + bias(lat, lon);
  const auto qlat = static_cast<std::uint64_t>((lat + 90.0) * 16.0);
  const auto qlon = static_cast<std::uint64_t>(lon * 16.0);
  temp += opts_.noise_sigma * hash_normal(opts_.seed, week, qlat, qlon);
  return std::max(temp, -1.9);
}

std::vector<double> CESMSurrogate::field(const Grid& grid,
                                         std::size_t week) const {
  std::vector<double> out(grid.cells());
  for (std::size_t i = 0; i < grid.nlat; ++i) {
    const double lat = grid.lat_of(i);
    for (std::size_t j = 0; j < grid.nlon; ++j) {
      out[grid.index(i, j)] = value(lat, grid.lon_of(j), week);
    }
  }
  return out;
}

Matrix CESMSurrogate::snapshots(const LandMask& mask, std::size_t week0,
                                std::size_t count) const {
  return collect_snapshots(*this, mask, week0, count);
}

HYCOMSurrogate::HYCOMSurrogate(const SyntheticSST& truth, HYCOMOptions options)
    : truth_(&truth), opts_(options) {}

double HYCOMSurrogate::value(double lat, double lon, std::size_t week) const {
  const auto t = static_cast<double>(week);
  // Forecast error: an independent smooth wave field (position/timing
  // errors in the mesoscale forecast) plus interpolation noise and a small
  // systematic bias.
  const double err = truth_->eddy(lat, lon, t, opts_.seed) *
                     (opts_.error_wave_amplitude /
                      std::max(truth_->options().eddy_amplitude, 1e-9));
  // Climate-mode mistiming: the forecast tracks the chaotic indices with a
  // lag (its data assimilation trails the real evolution).
  const double enso_err =
      opts_.enso_error_fraction *
      (truth_->options().enso_amplitude * truth_->enso_pattern(lat, lon) *
           (truth_->enso_index(t - opts_.enso_lag_weeks) -
            truth_->enso_index(t)) +
       truth_->options().tele_amplitude * truth_->tele_pattern(lat, lon) *
           (truth_->tele_index(t - opts_.enso_lag_weeks) -
            truth_->tele_index(t)));
  const auto qlat = static_cast<std::uint64_t>((lat + 90.0) * 16.0);
  const auto qlon = static_cast<std::uint64_t>(lon * 16.0);
  const double noise =
      opts_.noise_sigma * hash_normal(opts_.seed, week, qlat, qlon);
  return truth_->value(lat, lon, week) + err + enso_err + opts_.bias + noise;
}

std::vector<double> HYCOMSurrogate::field(const Grid& grid,
                                          std::size_t week) const {
  std::vector<double> out(grid.cells());
  for (std::size_t i = 0; i < grid.nlat; ++i) {
    const double lat = grid.lat_of(i);
    for (std::size_t j = 0; j < grid.nlon; ++j) {
      out[grid.index(i, j)] = value(lat, grid.lon_of(j), week);
    }
  }
  return out;
}

Matrix HYCOMSurrogate::snapshots(const LandMask& mask, std::size_t week0,
                                 std::size_t count) const {
  return collect_snapshots(*this, mask, week0, count);
}

std::size_t HYCOMSurrogate::first_available_week() {
  return static_cast<std::size_t>(week_of_date(2015, 4, 5));
}

std::size_t HYCOMSurrogate::last_available_week() {
  return static_cast<std::size_t>(week_of_date(2018, 6, 24));
}

}  // namespace geonas::data
