#include "io/atomic_file.hpp"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <stdexcept>

namespace geonas::io {

namespace {

/// "<what>: cannot <action> '<path>'" plus the most specific cause we
/// can determine: a missing parent directory by name, else the OS error.
std::string diagnose(const std::string& what, const std::string& action,
                     const std::string& path, int saved_errno) {
  std::string msg = what + ": cannot " + action + " '" + path + "'";
  std::error_code ec;
  const std::filesystem::path parent =
      std::filesystem::path(path).parent_path();
  if (!parent.empty() && !std::filesystem::exists(parent, ec)) {
    msg += " (parent directory '" + parent.string() + "' does not exist)";
  } else if (saved_errno != 0) {
    msg += std::string(" (") + std::strerror(saved_errno) + ")";
  }
  return msg;
}

void remove_quietly(const std::string& path) noexcept {
  std::error_code ec;
  std::filesystem::remove(path, ec);
}

}  // namespace

void atomic_write_file(const std::string& path,
                       const std::function<void(std::ostream&)>& producer,
                       const std::string& what) {
  const std::string tmp = path + ".tmp";
  {
    errno = 0;
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      throw std::runtime_error(
          diagnose(what, "open temporary file for writing", tmp, errno));
    }
    try {
      producer(out);
    } catch (...) {
      out.close();
      remove_quietly(tmp);
      throw;
    }
    errno = 0;
    out.flush();
    if (!out) {
      const int saved = errno;
      out.close();
      remove_quietly(tmp);
      throw std::runtime_error(diagnose(what, "write", tmp, saved));
    }
  }
  errno = 0;
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    const int saved = errno;
    remove_quietly(tmp);
    throw std::runtime_error(
        diagnose(what, "rename '" + tmp + "' into place at", path, saved));
  }
}

}  // namespace geonas::io
