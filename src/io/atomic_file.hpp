// Atomic whole-file replacement for durable artifacts.
//
// Every writer of a durable artifact (telemetry sidecars, weight files,
// search checkpoints) follows the same publish protocol: stream the
// content into `<path>.tmp`, flush, then rename over `<path>` so readers
// only ever observe a complete file. This helper centralizes the
// protocol and — the part the ad-hoc copies got wrong — the failure
// diagnostics: every error names the operation, the full path it was
// working on, and the OS error text, and a missing parent directory
// (the most common field failure: `--metrics-out missing-dir/t.json`)
// is called out explicitly instead of a bare stream failure.
#pragma once

#include <functional>
#include <iosfwd>
#include <string>

namespace geonas::io {

/// Atomically replaces `path`: opens `path + ".tmp"` (binary,
/// truncating), invokes `producer` to stream the content, flushes, and
/// renames the temporary over `path`. On any failure the temporary is
/// removed and a std::runtime_error is thrown whose message contains
/// `what` (the operation, e.g. "save_weights_file"), the full path, and
/// strerror(errno); a nonexistent parent directory is diagnosed by name.
/// Exceptions from `producer` propagate unchanged (after cleanup).
void atomic_write_file(const std::string& path,
                       const std::function<void(std::ostream&)>& producer,
                       const std::string& what);

}  // namespace geonas::io
