// Versioned binary container primitives shared by every durable artifact
// (weight files, search checkpoints).
//
// Layout contract: an 8-byte magic, a u32 format version, a caller-defined
// sequence of fixed-width little-endian fields (strings and arrays are
// length-prefixed), and a CRC-32 trailer covering every byte written
// before it — so truncation, bit rot and format confusion are all caught
// with a byte-offset diagnostic instead of garbage values. Doubles are
// stored as raw IEEE-754 bit patterns, so non-finite values (a diverged
// training's NaN/inf weights) round-trip exactly.
//
// Every read checks the stream; any failure throws std::runtime_error
// naming the field, the byte offset at which the stream died, and
// expected-vs-received byte counts. BinaryReader never blocks waiting
// for more input: it is fed complete, already-delivered byte sequences
// (files, or socket frames assembled by hpc::net::FrameAssembler — a
// live socket is never handed to the reader directly, so a partially
// delivered frame surfaces as a truncation diagnostic, not a hang).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace geonas::io {

/// Running CRC-32 (IEEE 802.3 polynomial, reflected). Feed `crc` from the
/// previous call to continue a checksum; start from 0.
[[nodiscard]] std::uint32_t crc32_update(std::uint32_t crc, const void* data,
                                         std::size_t size) noexcept;

class BinaryWriter {
 public:
  /// Writes the container header: exactly 8 magic bytes + the version.
  /// `magic` must be 8 characters.
  BinaryWriter(std::ostream& os, std::string_view magic,
               std::uint32_t version);

  void u8(std::uint8_t value);
  void u32(std::uint32_t value);
  void u64(std::uint64_t value);
  /// Raw IEEE-754 bits; NaN/inf round-trip bit-exactly.
  void f64(double value);
  /// u64 length prefix + raw bytes.
  void str(std::string_view value);
  /// u64 element-count prefix + raw doubles.
  void f64_array(const double* values, std::size_t count);
  /// Unprefixed raw bytes (caller stores the length separately).
  void bytes(const void* data, std::size_t size);

  /// Writes the CRC-32 trailer and flushes; the writer must not be used
  /// afterwards. Throws if the stream failed at any point.
  void finish();

  [[nodiscard]] std::uint64_t offset() const noexcept { return offset_; }

 private:
  std::ostream* os_;
  std::uint32_t crc_ = 0;
  std::uint64_t offset_ = 0;
  bool finished_ = false;
};

class BinaryReader {
 public:
  /// Reads and validates the header. Throws when the magic differs or the
  /// stored version lies outside [min_version, max_version].
  BinaryReader(std::istream& is, std::string_view magic,
               std::uint32_t min_version, std::uint32_t max_version);

  [[nodiscard]] std::uint32_t version() const noexcept { return version_; }
  /// Bytes consumed so far (diagnostics).
  [[nodiscard]] std::uint64_t offset() const noexcept { return offset_; }

  [[nodiscard]] std::uint8_t u8(const char* what);
  [[nodiscard]] std::uint32_t u32(const char* what);
  [[nodiscard]] std::uint64_t u64(const char* what);
  [[nodiscard]] double f64(const char* what);
  /// Length-prefixed string; throws when the prefix exceeds `max_size`
  /// (clamps pathological prefixes from truncated/corrupt files before
  /// any allocation).
  [[nodiscard]] std::string str(const char* what,
                                std::uint64_t max_size = 1ULL << 20);
  /// Count-prefixed double array with the same clamp.
  [[nodiscard]] std::vector<double> f64_array(
      const char* what, std::uint64_t max_count = 1ULL << 28);
  void bytes(void* data, std::size_t size, const char* what);

  /// Reads the CRC-32 trailer and verifies it against every byte consumed;
  /// throws on mismatch (corruption) or truncation.
  void finish();

 private:
  void read_exact(void* data, std::size_t size, const char* what);

  std::istream* is_;
  std::uint32_t version_ = 0;
  std::uint32_t crc_ = 0;
  std::uint64_t offset_ = 0;
};

}  // namespace geonas::io
