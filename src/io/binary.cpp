#include "io/binary.hpp"

#include <array>
#include <bit>
#include <cstring>
#include <istream>
#include <ostream>
#include <stdexcept>

namespace geonas::io {

namespace {

std::array<std::uint32_t, 256> make_crc_table() noexcept {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t n = 0; n < 256; ++n) {
    std::uint32_t c = n;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1U) ? 0xEDB88320U ^ (c >> 1) : c >> 1;
    }
    table[n] = c;
  }
  return table;
}

void encode_le(std::uint64_t value, unsigned char* out, std::size_t size)
    noexcept {
  for (std::size_t i = 0; i < size; ++i) {
    out[i] = static_cast<unsigned char>((value >> (8 * i)) & 0xFF);
  }
}

std::uint64_t decode_le(const unsigned char* in, std::size_t size) noexcept {
  std::uint64_t value = 0;
  for (std::size_t i = size; i > 0; --i) {
    value = (value << 8) | in[i - 1];
  }
  return value;
}

[[noreturn]] void fail(const std::string& context, const char* what,
                       std::uint64_t offset) {
  throw std::runtime_error(context + " '" + what + "' at byte offset " +
                           std::to_string(offset));
}

}  // namespace

std::uint32_t crc32_update(std::uint32_t crc, const void* data,
                           std::size_t size) noexcept {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  const auto* bytes = static_cast<const unsigned char*>(data);
  std::uint32_t c = crc ^ 0xFFFFFFFFU;
  for (std::size_t i = 0; i < size; ++i) {
    c = table[(c ^ bytes[i]) & 0xFFU] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFU;
}

BinaryWriter::BinaryWriter(std::ostream& os, std::string_view magic,
                           std::uint32_t version)
    : os_(&os) {
  if (magic.size() != 8) {
    throw std::invalid_argument("BinaryWriter: magic must be 8 bytes");
  }
  bytes(magic.data(), magic.size());
  u32(version);
}

void BinaryWriter::bytes(const void* data, std::size_t size) {
  os_->write(static_cast<const char*>(data),
             static_cast<std::streamsize>(size));
  crc_ = crc32_update(crc_, data, size);
  offset_ += size;
}

void BinaryWriter::u8(std::uint8_t value) { bytes(&value, 1); }

void BinaryWriter::u32(std::uint32_t value) {
  std::array<unsigned char, 4> raw{};
  encode_le(value, raw.data(), raw.size());
  bytes(raw.data(), raw.size());
}

void BinaryWriter::u64(std::uint64_t value) {
  std::array<unsigned char, 8> raw{};
  encode_le(value, raw.data(), raw.size());
  bytes(raw.data(), raw.size());
}

void BinaryWriter::f64(double value) {
  u64(std::bit_cast<std::uint64_t>(value));
}

void BinaryWriter::str(std::string_view value) {
  u64(value.size());
  bytes(value.data(), value.size());
}

void BinaryWriter::f64_array(const double* values, std::size_t count) {
  u64(count);
  for (std::size_t i = 0; i < count; ++i) f64(values[i]);
}

void BinaryWriter::finish() {
  if (finished_) {
    throw std::logic_error("BinaryWriter::finish called twice");
  }
  finished_ = true;
  const std::uint32_t crc = crc_;  // trailer is not part of its own checksum
  std::array<unsigned char, 4> raw{};
  encode_le(crc, raw.data(), raw.size());
  os_->write(reinterpret_cast<const char*>(raw.data()), 4);
  os_->flush();
  if (!*os_) {
    throw std::runtime_error("BinaryWriter: stream write failure after " +
                             std::to_string(offset_) + " bytes");
  }
}

BinaryReader::BinaryReader(std::istream& is, std::string_view magic,
                           std::uint32_t min_version,
                           std::uint32_t max_version)
    : is_(&is) {
  if (magic.size() != 8) {
    throw std::invalid_argument("BinaryReader: magic must be 8 bytes");
  }
  std::array<char, 8> found{};
  read_exact(found.data(), found.size(), "magic");
  if (std::memcmp(found.data(), magic.data(), 8) != 0) {
    throw std::runtime_error(
        "BinaryReader: bad magic (expected '" + std::string(magic) +
        "', found '" + std::string(found.data(), found.size()) + "')");
  }
  version_ = u32("version");
  if (version_ < min_version || version_ > max_version) {
    throw std::runtime_error(
        "BinaryReader: unsupported '" + std::string(magic) + "' version " +
        std::to_string(version_) + " (supported " +
        std::to_string(min_version) + ".." + std::to_string(max_version) +
        ")");
  }
}

void BinaryReader::read_exact(void* data, std::size_t size, const char* what) {
  // istream::read already loops over short underflows (a streambuf that
  // delivers one byte at a time still assembles the full field), so a
  // short count here means the stream genuinely ended or failed mid-field.
  // The diagnostic names the field, the exact byte offset at which the
  // stream died, and expected-vs-received so a truncated frame arriving
  // from a socket is distinguishable from a short local file.
  is_->read(static_cast<char*>(data), static_cast<std::streamsize>(size));
  const auto received = static_cast<std::size_t>(is_->gcount());
  if (received != size || !*is_) {
    throw std::runtime_error(
        "BinaryReader: truncated stream reading '" + std::string(what) +
        "' at byte offset " +
        std::to_string(offset_ + static_cast<std::uint64_t>(received)) +
        " (expected " + std::to_string(size) + " bytes, received " +
        std::to_string(received) + ")");
  }
  crc_ = crc32_update(crc_, data, size);
  offset_ += size;
}

std::uint8_t BinaryReader::u8(const char* what) {
  std::uint8_t value = 0;
  read_exact(&value, 1, what);
  return value;
}

std::uint32_t BinaryReader::u32(const char* what) {
  std::array<unsigned char, 4> raw{};
  read_exact(raw.data(), raw.size(), what);
  return static_cast<std::uint32_t>(decode_le(raw.data(), raw.size()));
}

std::uint64_t BinaryReader::u64(const char* what) {
  std::array<unsigned char, 8> raw{};
  read_exact(raw.data(), raw.size(), what);
  return decode_le(raw.data(), raw.size());
}

double BinaryReader::f64(const char* what) {
  return std::bit_cast<double>(u64(what));
}

std::string BinaryReader::str(const char* what, std::uint64_t max_size) {
  const std::uint64_t size = u64(what);
  if (size > max_size) {
    fail("BinaryReader: implausible length prefix for", what, offset_);
  }
  std::string value(static_cast<std::size_t>(size), '\0');
  if (size > 0) read_exact(value.data(), value.size(), what);
  return value;
}

std::vector<double> BinaryReader::f64_array(const char* what,
                                            std::uint64_t max_count) {
  const std::uint64_t count = u64(what);
  if (count > max_count) {
    fail("BinaryReader: implausible element count for", what, offset_);
  }
  std::vector<double> values(static_cast<std::size_t>(count));
  for (double& v : values) v = f64(what);
  return values;
}

void BinaryReader::bytes(void* data, std::size_t size, const char* what) {
  read_exact(data, size, what);
}

void BinaryReader::finish() {
  const std::uint32_t expected = crc_;  // checksum of everything consumed
  std::array<unsigned char, 4> raw{};
  is_->read(reinterpret_cast<char*>(raw.data()), 4);
  if (is_->gcount() != 4 || !*is_) {
    throw std::runtime_error(
        "BinaryReader: truncated stream reading 'crc trailer' at byte "
        "offset " + std::to_string(offset_) + " (expected 4 bytes, received " +
        std::to_string(is_->gcount()) + ")");
  }
  const auto stored = static_cast<std::uint32_t>(decode_le(raw.data(), 4));
  if (stored != expected) {
    throw std::runtime_error(
        "BinaryReader: CRC mismatch over " + std::to_string(offset_) +
        " bytes (stored " + std::to_string(stored) + ", computed " +
        std::to_string(expected) + ") — file is corrupt or truncated");
  }
}

}  // namespace geonas::io
